// Wire front-end robustness and protocol tests (DESIGN.md §14).
//
// The table-driven malformed-input suite is the server's crash contract:
// truncated headers, compression pointer loops, over-long names, and junk
// payloads must be answered with FORMERR or dropped — never a crash — and
// the suite runs under the ASan/UBSan CI labels to prove it.
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dns/wire.h"
#include "net/udp_client.h"
#include "obs/metrics.h"
#include "resolver/wire_frontend.h"
#include "util/rng.h"

namespace dnsnoise {
namespace {

constexpr std::size_t kFatAnswerCount = 40;  // well past the 512-byte limit

/// Minimal authority for the frontend tests: one ordinary zone, one zone
/// whose responses overflow UDP, everything else NXDOMAIN.
class WireFrontendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    authority_.register_zone(*DomainName::parse("smoke.test"),
                             SyntheticAuthority::make_flat_a_zone(60));
    authority_.register_zone(
        *DomainName::parse("fat.test"),
        [](const Question& question, SimTime) {
          AuthorityAnswer answer;
          answer.rcode = RCode::NoError;
          for (std::size_t i = 0; i < kFatAnswerCount; ++i) {
            ResourceRecord rr;
            rr.name = question.name;
            rr.type = RRType::A;
            rr.ttl = 60;
            rr.rdata = "10.0." + std::to_string(i / 256) + "." +
                       std::to_string(i % 256);
            answer.answers.push_back(std::move(rr));
          }
          return answer;
        });
    ClusterConfig config;
    config.server_count = 1;
    cluster_ = std::make_unique<RdnsCluster>(config, authority_);
  }

  WireFrontend& frontend(bool start = true,
                         obs::MetricsRegistry* metrics = nullptr) {
    WireFrontendConfig config;
    config.allow_replay_meta = true;
    config.metrics = metrics;
    frontend_ = std::make_unique<WireFrontend>(*cluster_, config);
    if (start) {
      EXPECT_TRUE(frontend_->start()) << frontend_->error();
    }
    return *frontend_;
  }

  /// Runs one payload through the shared handler (no socket round trip).
  bool handle(WireFrontend& fe, const std::vector<std::uint8_t>& request,
              std::vector<std::uint8_t>& response) {
    return fe.handle_query(request, net::UdpPeer{0x7f000001, 9999}, response,
                           WireFrontend::Transport::kUdp);
  }

  SyntheticAuthority authority_;
  std::unique_ptr<RdnsCluster> cluster_;
  std::unique_ptr<WireFrontend> frontend_;
};

std::vector<std::uint8_t> query_bytes(const std::string& qname,
                                      RRType type = RRType::A,
                                      std::uint16_t id = 1) {
  return encode_message(
      DnsMessage::make_query(id, *DomainName::parse(qname), type));
}

// --- Protocol happy paths --------------------------------------------------

TEST_F(WireFrontendTest, AnswersRegisteredNameOverUdp) {
  WireFrontend& fe = frontend();
  net::DnsWireClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", fe.udp_port()));
  const auto result = client.query(DnsMessage::make_query(
      77, *DomainName::parse("a.smoke.test"), RRType::A));
  ASSERT_TRUE(result.has_value()) << client.error();
  EXPECT_FALSE(result->via_tcp);
  EXPECT_EQ(result->response.header.rcode, RCode::NoError);
  EXPECT_TRUE(result->response.header.qr);
  EXPECT_TRUE(result->response.header.ra);
  ASSERT_EQ(result->response.answers.size(), 1u);
  EXPECT_EQ(result->response.answers[0].type, RRType::A);
  EXPECT_EQ(fe.stats().queries, 1u);
  EXPECT_EQ(fe.stats().udp_queries, 1u);
}

TEST_F(WireFrontendTest, AnswersAaaaQueries) {
  WireFrontend& fe = frontend();
  net::DnsWireClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", fe.udp_port()));
  const auto result = client.query(DnsMessage::make_query(
      78, *DomainName::parse("v6.smoke.test"), RRType::AAAA));
  ASSERT_TRUE(result.has_value()) << client.error();
  EXPECT_EQ(result->response.header.rcode, RCode::NoError);
  ASSERT_EQ(result->response.answers.size(), 1u);
  EXPECT_EQ(result->response.answers[0].type, RRType::AAAA);
}

TEST_F(WireFrontendTest, UnregisteredNameIsNxdomain) {
  WireFrontend& fe = frontend();
  net::DnsWireClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", fe.udp_port()));
  const auto result = client.query(DnsMessage::make_query(
      79, *DomainName::parse("nowhere.invalid"), RRType::A));
  ASSERT_TRUE(result.has_value()) << client.error();
  EXPECT_EQ(result->response.header.rcode, RCode::NXDomain);
  EXPECT_TRUE(result->response.answers.empty());
}

TEST_F(WireFrontendTest, OversizeResponseTruncatesThenServesOverTcp) {
  WireFrontend& fe = frontend();
  net::DnsWireClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", fe.udp_port(), fe.tcp_port()));
  const auto result = client.query(DnsMessage::make_query(
      80, *DomainName::parse("big.fat.test"), RRType::A));
  ASSERT_TRUE(result.has_value()) << client.error();
  EXPECT_TRUE(result->udp_truncated);
  EXPECT_TRUE(result->via_tcp);
  EXPECT_EQ(result->response.header.rcode, RCode::NoError);
  EXPECT_FALSE(result->response.header.tc);
  EXPECT_EQ(result->response.answers.size(), kFatAnswerCount);
  EXPECT_EQ(fe.stats().truncated, 1u);
  EXPECT_EQ(fe.stats().tcp_queries, 1u);
}

TEST_F(WireFrontendTest, TruncatedUdpResponseKeepsHeaderAndQuestion) {
  WireFrontend& fe = frontend();
  net::DnsWireClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", fe.udp_port()));
  const auto result =
      client.query(DnsMessage::make_query(
                       81, *DomainName::parse("big.fat.test"), RRType::A),
                   /*timeout_ms=*/1000, /*tcp_fallback=*/false);
  ASSERT_TRUE(result.has_value()) << client.error();
  EXPECT_TRUE(result->response.header.tc);
  EXPECT_TRUE(result->response.answers.empty());
  ASSERT_EQ(result->response.questions.size(), 1u);
  EXPECT_EQ(result->response.questions[0].name.text(), "big.fat.test");
}

TEST_F(WireFrontendTest, ReplayMetaDrivesCacheTimeline) {
  WireFrontend& fe = frontend();
  net::DnsWireClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", fe.udp_port()));
  DnsMessage query = DnsMessage::make_query(
      90, *DomainName::parse("hot.smoke.test"), RRType::A);
  net::attach_replay_meta(query, {.ts = 1000, .client_id = 5});
  ASSERT_TRUE(client.query(query).has_value());
  // Same name 10 simulated seconds later: served from cache, same rdata.
  DnsMessage repeat = DnsMessage::make_query(
      91, *DomainName::parse("hot.smoke.test"), RRType::A);
  net::attach_replay_meta(repeat, {.ts = 1010, .client_id = 5});
  const auto second = client.query(repeat);
  ASSERT_TRUE(second.has_value()) << client.error();
  ASSERT_EQ(second->response.answers.size(), 1u);
  // TTL 60 at +10s: the cached record is still live.
  EXPECT_EQ(fe.stats().queries, 2u);
}

TEST_F(WireFrontendTest, ExportsServerMetrics) {
  obs::MetricsRegistry metrics;
  WireFrontend& fe = frontend(/*start=*/true, &metrics);
  net::DnsWireClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", fe.udp_port()));
  ASSERT_TRUE(client
                  .query(DnsMessage::make_query(
                      92, *DomainName::parse("m.smoke.test"), RRType::A))
                  .has_value());
  EXPECT_EQ(metrics.counter("server.queries").value(), 1u);
  std::vector<std::uint8_t> response;
  std::vector<std::uint8_t> junk(20, 0xff);
  handle(fe, junk, response);
  EXPECT_EQ(metrics.counter("server.formerr").value(), 1u);
}

// --- Malformed input: the crash contract -----------------------------------

struct MalformedCase {
  const char* label;
  std::vector<std::uint8_t> payload;
  /// Expected disposition: true = answered with `rcode`, false = dropped.
  bool answered;
  RCode rcode;
};

std::vector<MalformedCase> malformed_cases() {
  std::vector<MalformedCase> cases;
  cases.push_back({"empty", {}, false, RCode::NoError});
  cases.push_back({"one_byte", {0xab}, false, RCode::NoError});
  cases.push_back(
      {"eleven_byte_header", std::vector<std::uint8_t>(11, 0), false,
       RCode::NoError});
  // 12-byte header claiming one question that never follows.
  cases.push_back({"header_only_qdcount_1",
                   {0x12, 0x34, 0x01, 0x00, 0x00, 0x01, 0, 0, 0, 0, 0, 0},
                   true, RCode::FormErr});
  // qdcount=0 is not a query this server can answer meaningfully.
  cases.push_back({"zero_questions",
                   {0x12, 0x34, 0x01, 0x00, 0x00, 0x00, 0, 0, 0, 0, 0, 0},
                   true, RCode::FormErr});
  // Question whose name is a compression pointer at itself (loop).
  cases.push_back({"pointer_self_loop",
                   {0x12, 0x34, 0x01, 0x00, 0x00, 0x01, 0, 0, 0, 0, 0, 0,
                    0xc0, 0x0c, 0x00, 0x01, 0x00, 0x01},
                   true, RCode::FormErr});
  // Label length byte runs past the end of the payload.
  cases.push_back({"label_overrun",
                   {0x12, 0x34, 0x01, 0x00, 0x00, 0x01, 0, 0, 0, 0, 0, 0,
                    0x3f, 'a', 'b', 'c'},
                   true, RCode::FormErr});
  // A name over the 255-byte wire limit: five 63-byte labels.
  {
    std::vector<std::uint8_t> overlong = {0x12, 0x34, 0x01, 0x00, 0x00, 0x01,
                                          0,    0,    0,    0,    0,    0};
    for (int label = 0; label < 5; ++label) {
      overlong.push_back(63);
      overlong.insert(overlong.end(), 63, 'x');
    }
    overlong.push_back(0);
    overlong.insert(overlong.end(), {0x00, 0x01, 0x00, 0x01});
    cases.push_back({"overlong_name", std::move(overlong), true,
                     RCode::FormErr});
  }
  // A response (QR=1) must never be answered — loop prevention.
  {
    auto response_bits = encode_message(DnsMessage::make_query(
        9, *DomainName::parse("a.smoke.test"), RRType::A));
    response_bits[2] |= 0x80;
    cases.push_back(
        {"qr_response", std::move(response_bits), false, RCode::NoError});
  }
  // Non-QUERY opcode (STATUS = 2).
  {
    auto status = encode_message(DnsMessage::make_query(
        9, *DomainName::parse("a.smoke.test"), RRType::A));
    status[2] = static_cast<std::uint8_t>((status[2] & 0x87) | (2 << 3));
    cases.push_back({"opcode_status", std::move(status), true, RCode::NotImp});
  }
  // Two questions in one message.
  {
    DnsMessage two = DnsMessage::make_query(
        9, *DomainName::parse("a.smoke.test"), RRType::A);
    two.questions.push_back(two.questions.front());
    cases.push_back(
        {"two_questions", encode_message(two), true, RCode::FormErr});
  }
  return cases;
}

TEST_F(WireFrontendTest, MalformedTableNeverCrashes) {
  WireFrontend& fe = frontend(/*start=*/false);
  for (const MalformedCase& test : malformed_cases()) {
    SCOPED_TRACE(test.label);
    std::vector<std::uint8_t> response;
    const bool answered = handle(fe, test.payload, response);
    EXPECT_EQ(answered, test.answered);
    if (!test.answered) continue;
    const auto decoded = decode_message(response);
    ASSERT_TRUE(decoded.has_value()) << "undecodable error response";
    EXPECT_EQ(decoded->header.rcode, test.rcode);
    EXPECT_TRUE(decoded->header.qr);
    if (test.payload.size() >= 2) {
      const std::uint16_t id = static_cast<std::uint16_t>(
          (test.payload[0] << 8) | test.payload[1]);
      EXPECT_EQ(decoded->header.id, id) << "error must echo the query id";
    }
  }
  const WireFrontendStats stats = fe.stats();
  EXPECT_EQ(stats.queries, 0u);
  EXPECT_GT(stats.formerr, 0u);
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_GT(stats.notimp, 0u);
}

TEST_F(WireFrontendTest, MalformedTableOverRealSocket) {
  WireFrontend& fe = frontend();
  for (const MalformedCase& test : malformed_cases()) {
    SCOPED_TRACE(test.label);
    net::UdpClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", fe.udp_port()));
    const auto reply =
        client.exchange(test.payload, test.answered ? 2000 : 200);
    EXPECT_EQ(reply.has_value(), test.answered);
    if (reply.has_value()) {
      const auto decoded = decode_message(*reply);
      ASSERT_TRUE(decoded.has_value());
      EXPECT_EQ(decoded->header.rcode, test.rcode);
    }
  }
  // The server survives the whole table: a normal query still works.
  net::DnsWireClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", fe.udp_port()));
  EXPECT_TRUE(client
                  .query(DnsMessage::make_query(
                      99, *DomainName::parse("ok.smoke.test"), RRType::A))
                  .has_value());
}

TEST_F(WireFrontendTest, SeededJunkFuzzNeverCrashes) {
  WireFrontend& fe = frontend(/*start=*/false);
  Rng rng(0xf00dcafeULL);  // fixed seed: failures must reproduce
  std::vector<std::uint8_t> payload;
  std::vector<std::uint8_t> response;
  for (int iteration = 0; iteration < 400; ++iteration) {
    payload.resize(rng.below(96));
    for (std::uint8_t& b : payload) {
      b = static_cast<std::uint8_t>(rng.below(256));
    }
    if (fe.handle_query(payload, net::UdpPeer{1, 2}, response,
                        WireFrontend::Transport::kUdp)) {
      // Whatever we answered must itself be valid wire format.
      EXPECT_TRUE(decode_message(response).has_value());
    }
  }
  const WireFrontendStats stats = fe.stats();
  EXPECT_EQ(stats.queries + stats.formerr + stats.notimp + stats.dropped,
            400u);
}

TEST_F(WireFrontendTest, TcpTransportNeverTruncates) {
  WireFrontend& fe = frontend(/*start=*/false);
  std::vector<std::uint8_t> response;
  ASSERT_TRUE(fe.handle_query(query_bytes("big.fat.test"),
                              net::UdpPeer{1, 2}, response,
                              WireFrontend::Transport::kTcp));
  const auto decoded = decode_message(response);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(decoded->header.tc);
  EXPECT_EQ(decoded->answers.size(), kFatAnswerCount);
  EXPECT_GT(response.size(), 512u);
}

}  // namespace
}  // namespace dnsnoise
