// Live telemetry endpoint (obs/telemetry_server + net/http_listener):
// health evaluation (including the fault-injected stall -> 503 flip),
// request routing, a real-socket scrape of a running server, scraping
// concurrently with a mining run, and the obs contract that telemetry
// never changes findings.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "engine/parallel_miner.h"
#include "net/http_listener.h"
#include "obs/heartbeat.h"
#include "obs/metrics.h"
#include "obs/openmetrics.h"
#include "obs/telemetry_server.h"

namespace dnsnoise {
namespace {

using obs::Heartbeat;
using obs::HealthDocument;
using obs::MetricsRegistry;
using obs::TelemetryConfig;
using obs::TelemetryServer;

/// One blocking HTTP/1.0-style exchange against 127.0.0.1:port.
std::string http_get(std::uint16_t port, const std::string& target,
                     const std::string& method = "GET") {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = method + " " + target +
                              " HTTP/1.1\r\nHost: localhost\r\n"
                              "Connection: close\r\n\r\n";
  (void)!::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

ScenarioScale small_scale() {
  ScenarioScale scale;
  scale.queries_per_day = 30'000;
  scale.client_count = 1'500;
  scale.population_scale = 0.5;
  return scale;
}

ClusterConfig small_cluster() {
  ClusterConfig cluster;
  cluster.server_count = 4;
  return cluster;
}

// --- render_health: pure, socket-free --------------------------------------

TEST(TelemetryHealth, IdleRegistryIsHealthy) {
  MetricsRegistry registry;
  obs::heartbeat_gauge(registry, "engine").set(0.0);  // ancient heartbeat
  const HealthDocument doc =
      obs::render_health(registry.snapshot(), /*now_seconds=*/1000.0,
                         /*stall_seconds=*/30.0);
  // No run active: stale heartbeats are fine, status is "idle".
  EXPECT_TRUE(doc.healthy);
  EXPECT_FALSE(doc.run_active);
  ASSERT_EQ(doc.stages.size(), 1u);
  EXPECT_EQ(doc.stages[0].stage, "engine");
  EXPECT_TRUE(doc.stages[0].ok);
  EXPECT_NE(doc.json.find("\"status\": \"idle\""), std::string::npos);
}

TEST(TelemetryHealth, FreshHeartbeatDuringRunIsOk) {
  MetricsRegistry registry;
  registry.gauge(std::string(obs::kRunActiveGauge)).set(1.0);
  obs::heartbeat_gauge(registry, "engine").set(995.0);
  const HealthDocument doc =
      obs::render_health(registry.snapshot(), 1000.0, 30.0);
  EXPECT_TRUE(doc.healthy);
  EXPECT_TRUE(doc.run_active);
  EXPECT_NE(doc.json.find("\"status\": \"ok\""), std::string::npos);
}

TEST(TelemetryHealth, StalledHeartbeatDuringRunFlipsUnhealthy) {
  // Fault injection: the run claims to be active but the engine stage
  // stopped beating 100s ago with a 30s budget.
  MetricsRegistry registry;
  registry.gauge(std::string(obs::kRunActiveGauge)).set(1.0);
  obs::heartbeat_gauge(registry, "engine").set(900.0);
  obs::heartbeat_gauge(registry, "miner").set(999.0);
  const HealthDocument doc =
      obs::render_health(registry.snapshot(), 1000.0, 30.0);
  EXPECT_FALSE(doc.healthy);
  ASSERT_EQ(doc.stages.size(), 2u);
  EXPECT_EQ(doc.stages[0].stage, "engine");
  EXPECT_FALSE(doc.stages[0].ok);
  EXPECT_EQ(doc.stages[1].stage, "miner");
  EXPECT_TRUE(doc.stages[1].ok);
  EXPECT_NE(doc.json.find("\"status\": \"stalled\""), std::string::npos);
}

// --- handle(): routing without sockets -------------------------------------

TEST(TelemetryServer, RoutesMetricsHealthzAndTrace) {
  MetricsRegistry registry;
  registry.counter("cluster.below_answers").add(7);
  TelemetryServer server(registry);  // not started; handle() is direct

  net::HttpRequest request;
  request.method = "GET";
  request.target = "/metrics";
  net::HttpResponse response = server.handle(request);
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type, obs::kOpenMetricsContentType);
  EXPECT_NE(response.body.find("dnsnoise_cluster_below_answers_total 7\n"),
            std::string::npos);
  EXPECT_NE(response.body.find("# EOF\n"), std::string::npos);

  request.target = "/metrics?format=prometheus";  // query string ignored
  EXPECT_EQ(server.handle(request).status, 200);

  request.target = "/healthz";
  response = server.handle(request);
  EXPECT_EQ(response.status, 200);  // idle -> healthy
  EXPECT_NE(response.body.find("dnsnoise-health-v1"), std::string::npos);

  request.target = "/trace";
  EXPECT_EQ(server.handle(request).status, 404);  // nothing published yet
  server.publish_trace("{\"schema\": \"dnsnoise-trace-v1\"}\n");
  response = server.handle(request);
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("dnsnoise-trace-v1"), std::string::npos);

  request.target = "/nope";
  EXPECT_EQ(server.handle(request).status, 404);
}

TEST(TelemetryServer, HealthzFlips503OnInjectedStall) {
  MetricsRegistry registry;
  TelemetryConfig config;
  config.stall_seconds = 0.001;
  TelemetryServer server(registry, config);

  net::HttpRequest request;
  request.method = "GET";
  request.target = "/healthz";
  EXPECT_EQ(server.handle(request).status, 200);  // idle

  // Inject: run active, heartbeat already older than the 1ms budget.
  registry.gauge(std::string(obs::kRunActiveGauge)).set(1.0);
  obs::heartbeat_gauge(registry, "engine")
      .set(obs::heartbeat_clock_seconds() - 1.0);
  EXPECT_EQ(server.handle(request).status, 503);

  // Recovery: the stage beats again (generous budget) -> healthy.
  TelemetryConfig healthy_config;
  healthy_config.stall_seconds = 3600.0;
  TelemetryServer healthy(registry, healthy_config);
  Heartbeat(&obs::heartbeat_gauge(registry, "engine")).beat();
  EXPECT_EQ(healthy.handle(request).status, 200);
}

// --- Real sockets ----------------------------------------------------------

TEST(TelemetryServer, ServesScrapesOverRealSockets) {
  MetricsRegistry registry;
  registry.counter("cluster.below_answers").add(42);
  TelemetryServer server(registry);  // port 0 -> ephemeral
  ASSERT_TRUE(server.start()) << server.error();
  ASSERT_TRUE(server.running());
  ASSERT_NE(server.port(), 0);

  const std::string metrics = http_get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("application/openmetrics-text"), std::string::npos);
  EXPECT_NE(metrics.find("dnsnoise_cluster_below_answers_total 42\n"),
            std::string::npos);
  EXPECT_NE(metrics.find("# EOF\n"), std::string::npos);

  const std::string health = http_get(server.port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);

  const std::string index = http_get(server.port(), "/");
  EXPECT_NE(index.find("dnsnoise telemetry"), std::string::npos);

  // Method discipline: POST is rejected, HEAD gets headers only.
  const std::string post = http_get(server.port(), "/metrics", "POST");
  EXPECT_NE(post.find("405"), std::string::npos);
  const std::string head = http_get(server.port(), "/metrics", "HEAD");
  EXPECT_NE(head.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_EQ(head.find("# EOF"), std::string::npos);

  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(TelemetryServer, SlowlogServes404UntilSourceIsSetAndAfterClear) {
  MetricsRegistry registry;
  TelemetryServer server(registry);
  ASSERT_TRUE(server.start()) << server.error();

  const std::string before = http_get(server.port(), "/slowlog");
  EXPECT_NE(before.find("404"), std::string::npos);

  server.set_slowlog_source(obs::SlowlogSource{
      [](std::size_t) {
        return std::string("{\"schema\": \"dnsnoise-slowlog-v1\"}\n");
      },
      {}});
  const std::string body = http_get(server.port(), "/slowlog");
  EXPECT_NE(body.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(body.find("dnsnoise-slowlog-v1"), std::string::npos);

  // Clearing (what ServedMiningDay does on finish) restores the 404 —
  // the server must never invoke a source whose owner has gone away.
  server.set_slowlog_source({});
  const std::string after = http_get(server.port(), "/slowlog");
  EXPECT_NE(after.find("404"), std::string::npos);
  server.stop();
}

TEST(TelemetryServer, SlowlogQueryParamsCapEntriesAnd400OnMalformed) {
  MetricsRegistry registry;
  TelemetryServer server(registry);
  // Render echoes the cap it received, so routing of ?n=N is observable.
  std::size_t seen_max = 1234;
  std::size_t clears = 0;
  server.set_slowlog_source(obs::SlowlogSource{
      [&seen_max](std::size_t max_entries) {
        seen_max = max_entries;
        return std::string("{\"schema\": \"dnsnoise-slowlog-v1\"}\n");
      },
      [&clears]() { ++clears; }});

  net::HttpRequest request;
  request.method = "GET";
  request.target = "/slowlog";
  EXPECT_EQ(server.handle(request).status, 200);
  EXPECT_EQ(seen_max, 0u);  // no cap

  request.target = "/slowlog?n=3";
  EXPECT_EQ(server.handle(request).status, 200);
  EXPECT_EQ(seen_max, 3u);

  // Well-formed but unrecognized keys are ignored (scraper noise).
  request.target = "/slowlog?format=json&n=7";
  EXPECT_EQ(server.handle(request).status, 200);
  EXPECT_EQ(seen_max, 7u);

  // Malformed query strings are 400, never silently ignored.
  for (const char* target :
       {"/slowlog?n", "/slowlog?=5", "/slowlog?n=abc", "/slowlog?n=-1",
        "/slowlog?n=1&bogus"}) {
    request.target = target;
    const net::HttpResponse response = server.handle(request);
    EXPECT_EQ(response.status, 400) << target;
    EXPECT_NE(response.body.find("\"error\""), std::string::npos) << target;
  }

  // POST /slowlog/clear invokes the clear hook exactly once.
  request.method = "POST";
  request.target = "/slowlog/clear";
  net::HttpResponse response = server.handle(request);
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"cleared\": true"), std::string::npos);
  EXPECT_EQ(clears, 1u);

  // Wrong method on the clear endpoint: 405 with the allowed verb.
  request.method = "GET";
  response = server.handle(request);
  EXPECT_EQ(response.status, 405);
  ASSERT_EQ(response.headers.size(), 1u);
  EXPECT_EQ(response.headers[0].first, "Allow");
  EXPECT_EQ(response.headers[0].second, "POST");

  // POST against a read-only endpoint: 405 advertising GET, HEAD.
  request.method = "POST";
  request.target = "/metrics";
  response = server.handle(request);
  EXPECT_EQ(response.status, 405);
  ASSERT_EQ(response.headers.size(), 1u);
  EXPECT_EQ(response.headers[0].second, "GET, HEAD");

  // Detached source: the clear endpoint answers 404, not a crash.
  server.set_slowlog_source({});
  request.target = "/slowlog/clear";
  EXPECT_EQ(server.handle(request).status, 404);
  EXPECT_EQ(clears, 1u);
}

TEST(TelemetryServer, TrafficServes404UntilSourceIsSet) {
  MetricsRegistry registry;
  TelemetryServer server(registry);
  ASSERT_TRUE(server.start()) << server.error();

  const std::string before = http_get(server.port(), "/traffic");
  EXPECT_NE(before.find("404"), std::string::npos);

  server.set_traffic_source(
      []() { return std::string("{\"schema\": \"dnsnoise-traffic-v1\"}\n"); });
  const std::string body = http_get(server.port(), "/traffic");
  EXPECT_NE(body.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(body.find("dnsnoise-traffic-v1"), std::string::npos);
  const std::string index = http_get(server.port(), "/");
  EXPECT_NE(index.find("/traffic"), std::string::npos);

  server.set_traffic_source({});
  const std::string after = http_get(server.port(), "/traffic");
  EXPECT_NE(after.find("404"), std::string::npos);
  server.stop();
}

TEST(TelemetryServer, MetricsRefreshHookRunsBeforeEverySnapshot) {
  MetricsRegistry registry;
  TelemetryServer server(registry);
  server.set_metrics_refresh(
      [&registry]() { registry.gauge("traffic.refreshed").add(1.0); });

  net::HttpRequest request;
  request.method = "GET";
  request.target = "/metrics";
  const net::HttpResponse first = server.handle(request);
  EXPECT_NE(first.body.find("dnsnoise_traffic_refreshed 1\n"),
            std::string::npos);
  const net::HttpResponse second = server.handle(request);
  EXPECT_NE(second.body.find("dnsnoise_traffic_refreshed 2\n"),
            std::string::npos);
  // Other endpoints never trigger the refresh.
  request.target = "/healthz";
  (void)server.handle(request);
  request.target = "/metrics";
  EXPECT_NE(server.handle(request).body.find("dnsnoise_traffic_refreshed 3\n"),
            std::string::npos);
  server.set_metrics_refresh({});
  EXPECT_NE(server.handle(request).body.find("dnsnoise_traffic_refreshed 3\n"),
            std::string::npos);
}

TEST(HttpListener, UnknownMethodGets405WithAllowHeader) {
  MetricsRegistry registry;
  TelemetryServer server(registry);
  ASSERT_TRUE(server.start()) << server.error();

  // The listener answers unknown methods itself — a proper 405 with
  // Allow, instead of the old close-without-reply.
  const std::string response = http_get(server.port(), "/metrics", "DELETE");
  EXPECT_NE(response.find("HTTP/1.1 405 Method Not Allowed"),
            std::string::npos);
  EXPECT_NE(response.find("Allow: GET, HEAD, POST"), std::string::npos);
  server.stop();
}

TEST(TelemetryServer, StartFailsCleanlyOnBusyPort) {
  MetricsRegistry registry;
  TelemetryServer first(registry);
  ASSERT_TRUE(first.start()) << first.error();
  TelemetryConfig config;
  config.port = first.port();
  TelemetryServer second(registry, config);
  EXPECT_FALSE(second.start());
  EXPECT_FALSE(second.error().empty());
  EXPECT_FALSE(second.running());
}

// --- Pipeline integration --------------------------------------------------

TEST(TelemetryPipeline, SessionServesLiveMetricsAndConcurrentScrapes) {
  MiningSession session(small_scale());
  session.cluster(small_cluster())
      .warmup(false)
      .threads(2)
      .enable_tracing()
      .enable_telemetry();
  ASSERT_NE(session.metrics(), nullptr);  // auto-enabled
  ASSERT_NE(session.telemetry(), nullptr);
  ASSERT_TRUE(session.telemetry()->running())
      << session.telemetry()->error();
  const std::uint16_t port = session.telemetry()->port();
  ASSERT_NE(port, 0);

  // Hammer /metrics and /healthz from another thread while the day mines:
  // scrapes snapshot on the serve thread, writers keep writing (the
  // concurrent-snapshot contract; run under TSan via the obs;engine
  // labels).
  std::atomic<bool> done{false};
  std::atomic<int> scrapes{0};
  std::thread scraper([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const std::string body = http_get(port, "/metrics");
      if (body.find("# EOF\n") != std::string::npos) {
        scrapes.fetch_add(1, std::memory_order_relaxed);
      }
      (void)http_get(port, "/healthz");
    }
  });
  const MiningDayResult result = session.run(ScenarioDate::kNov14);
  done.store(true, std::memory_order_relaxed);
  scraper.join();
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_GT(scrapes.load(), 0);

  // After the run: heartbeat gauges registered, run-active back to zero,
  // and the frozen trace is served on /trace.
  const obs::MetricsSnapshot snapshot = session.metrics()->snapshot();
  EXPECT_NE(snapshot.find("obs.heartbeat.engine"), nullptr);
  EXPECT_NE(snapshot.find("obs.heartbeat.miner"), nullptr);
  const obs::MetricSample* active = snapshot.find(obs::kRunActiveGauge);
  ASSERT_NE(active, nullptr);
  EXPECT_EQ(active->value, 0.0);
  const std::string trace = http_get(port, "/trace");
  EXPECT_NE(trace.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(trace.find("dnsnoise-trace-v1"), std::string::npos);
  const std::string health = http_get(port, "/healthz");
  EXPECT_NE(health.find("\"status\": \"idle\""), std::string::npos);
}

TEST(TelemetryPipeline, TelemetryDoesNotChangeFindings) {
  MiningSession plain(small_scale());
  plain.cluster(small_cluster()).warmup(false);
  const MiningDayResult without = plain.run(ScenarioDate::kNov14);
  ASSERT_TRUE(without.ok()) << without.error;

  MiningSession observed(small_scale());
  observed.cluster(small_cluster()).warmup(false).enable_telemetry();
  ASSERT_TRUE(observed.telemetry()->running());
  const MiningDayResult with = observed.run(ScenarioDate::kNov14);
  ASSERT_TRUE(with.ok()) << with.error;

  ASSERT_EQ(without.findings.size(), with.findings.size());
  for (std::size_t i = 0; i < without.findings.size(); ++i) {
    EXPECT_EQ(without.findings[i].zone, with.findings[i].zone);
    EXPECT_EQ(without.findings[i].depth, with.findings[i].depth);
    EXPECT_DOUBLE_EQ(without.findings[i].confidence,
                     with.findings[i].confidence);
  }
}

TEST(TelemetryPipeline, ClassicPipelineServesForTheRunDuration) {
  // PipelineOptions::telemetry_port wires the classic run_mining_day path;
  // the server only lives for the duration of the call, so observable
  // effects are the heartbeat gauges it leaves behind.
  obs::MetricsRegistry registry;
  PipelineOptions options;
  options.scale = small_scale();
  options.cluster = small_cluster();
  options.warmup = false;
  options.metrics = &registry;
  options.telemetry_port = 0;  // disabled: port 0 means "no server" here
  const MiningDayResult result = run_mining_day(ScenarioDate::kNov14, options);
  ASSERT_TRUE(result.ok()) << result.error;
  const obs::MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_NE(snapshot.find("obs.heartbeat.cluster"), nullptr);
  EXPECT_NE(snapshot.find("obs.heartbeat.miner"), nullptr);
  const obs::MetricSample* active = snapshot.find(obs::kRunActiveGauge);
  ASSERT_NE(active, nullptr);
  EXPECT_EQ(active->value, 0.0);
}

TEST(TelemetryPipeline, ReenablingMetricsRebindsTheServer) {
  MiningSession session(small_scale());
  session.enable_telemetry();
  ASSERT_TRUE(session.telemetry()->running());
  const std::uint16_t old_port = session.telemetry()->port();
  (void)old_port;
  session.enable_metrics();  // fresh registry; server must follow it
  ASSERT_NE(session.telemetry(), nullptr);
  EXPECT_TRUE(session.telemetry()->running());
  const std::string body =
      http_get(session.telemetry()->port(), "/metrics");
  EXPECT_NE(body.find("# EOF\n"), std::string::npos);
  session.enable_telemetry(false);
  EXPECT_EQ(session.telemetry(), nullptr);
}

}  // namespace
}  // namespace dnsnoise
