// Parity and determinism tests for dnsnoise::kernels (DESIGN.md §15).
//
// The contract under test: every dispatch level (scalar, SSE2, AVX2 —
// whichever this build + CPU can run) produces *bit-identical* output for
// the histogram, entropy, and name-normalization kernels.  Histograms are
// compared with memcmp, entropies with exact double equality.  A
// table-driven sweep covers the structural edge cases (lengths 0..255,
// one-symbol strings, the full byte alphabet including 0x00/0xff) and a
// seeded fuzz loop covers everything the table missed.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "dns/name_table.h"
#include "util/entropy.h"
#include "util/simd/kernels.h"

namespace dnsnoise::kernels {
namespace {

std::vector<DispatchLevel> available_levels() {
  std::vector<DispatchLevel> levels = {DispatchLevel::kScalar};
  if (level_available(DispatchLevel::kSse2)) {
    levels.push_back(DispatchLevel::kSse2);
  }
  if (level_available(DispatchLevel::kAvx2)) {
    levels.push_back(DispatchLevel::kAvx2);
  }
  return levels;
}

/// Reference entropy: the formula the repo used before the LUT rewrite,
/// H = -sum_c p_c log2 p_c.  The LUT path must agree to 1e-12.
double reference_entropy(std::string_view s) {
  if (s.size() <= 1) return 0.0;
  std::size_t counts[256] = {};
  for (const unsigned char c : s) ++counts[c];
  const double n = static_cast<double>(s.size());
  double h = 0.0;
  for (const std::size_t count : counts) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) / n;
    h -= p * std::log2(p);
  }
  return h;
}

CharHist build_at(DispatchLevel level, std::string_view s) {
  CharHist hist;
  hist_init(hist);
  hist_build_at(level, hist, s);
  return hist;
}

/// Asserts every available level reproduces the scalar kernel bit for bit:
/// histogram bytes, presence bitmap, and the entropy double.
void expect_parity(std::string_view s) {
  const CharHist scalar = build_at(DispatchLevel::kScalar, s);
  const double scalar_entropy =
      shannon_entropy_at(DispatchLevel::kScalar, s);
  for (const DispatchLevel level : available_levels()) {
    const CharHist hist = build_at(level, s);
    EXPECT_EQ(0, std::memcmp(hist.counts, scalar.counts, sizeof(hist.counts)))
        << "counts diverge at " << level_name(level) << " len=" << s.size();
    EXPECT_EQ(0,
              std::memcmp(hist.present, scalar.present, sizeof(hist.present)))
        << "bitmap diverges at " << level_name(level) << " len=" << s.size();
    const double entropy = shannon_entropy_at(level, s);
    EXPECT_EQ(scalar_entropy, entropy)
        << "entropy diverges at " << level_name(level) << " len=" << s.size();
  }
}

TEST(SimdKernelsTest, LevelNamesAndAvailability) {
  EXPECT_STREQ("scalar", level_name(DispatchLevel::kScalar));
  EXPECT_STREQ("sse2", level_name(DispatchLevel::kSse2));
  EXPECT_STREQ("avx2", level_name(DispatchLevel::kAvx2));
  EXPECT_TRUE(level_available(DispatchLevel::kScalar));
  // AVX2 without SSE2 is impossible.
  if (level_available(DispatchLevel::kAvx2)) {
    EXPECT_TRUE(level_available(DispatchLevel::kSse2));
  }
}

TEST(SimdKernelsTest, SetActiveLevel) {
  const DispatchLevel before = active_level();
  ASSERT_TRUE(set_active_level(DispatchLevel::kScalar));
  EXPECT_EQ(DispatchLevel::kScalar, active_level());
  ASSERT_TRUE(set_active_level(before));
  EXPECT_EQ(before, active_level());
}

TEST(SimdKernelsTest, ForcedLevelAppliesToHistograms) {
  // Auto mode routes histograms to scalar (measured rule); a forced level
  // applies everywhere so CI and benches can exercise the vector
  // histograms end to end.
  const DispatchLevel before = active_level();
  for (const DispatchLevel level : available_levels()) {
    ASSERT_TRUE(set_active_level(level));
    EXPECT_EQ(level, hist_level()) << level_name(level);
    EXPECT_EQ(level, active_level()) << level_name(level);
  }
  ASSERT_TRUE(set_active_level(before));
}

TEST(SimdKernelsTest, HistogramCountsAreExact) {
  CharHist hist;
  hist_init(hist);
  hist_build(hist, "abracadabra");
  EXPECT_EQ(5u, hist.counts['a']);
  EXPECT_EQ(2u, hist.counts['b']);
  EXPECT_EQ(2u, hist.counts['r']);
  EXPECT_EQ(1u, hist.counts['c']);
  EXPECT_EQ(1u, hist.counts['d']);
  EXPECT_EQ(0u, hist.counts['e']);
  hist_reset(hist);
  for (int c = 0; c < 256; ++c) EXPECT_EQ(0u, hist.counts[c]) << c;
  for (int w = 0; w < 4; ++w) EXPECT_EQ(0u, hist.present[w]) << w;
}

TEST(SimdKernelsTest, TableDrivenParity) {
  const std::string_view cases[] = {
      "",
      "a",
      ".",
      "ab",
      "aa",
      "abc",
      "www",
      "r4nd0m-l4bel_x",
      "0123456789abcdef",           // exactly one SSE2 lane
      "0123456789abcdef0123456789abcdef",   // exactly one AVX2 lane
      "the-quick-brown-fox-jumps-over-the-lazy-dog",
      "zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz",
  };
  for (const std::string_view s : cases) expect_parity(s);
}

TEST(SimdKernelsTest, ParityAcrossAllLengths) {
  // Lengths 0..255 with a rolling byte pattern, crossing every lane-mask
  // and tail-handling boundary (15/16/17, 31/32/33, 63/64/65, ...).
  std::string s;
  for (std::size_t len = 0; len <= 255; ++len) {
    s.clear();
    for (std::size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>('a' + (i * 7 + len) % 26));
    }
    expect_parity(s);
  }
}

TEST(SimdKernelsTest, ParityOnOneSymbolStrings) {
  for (std::size_t len = 1; len <= 70; ++len) {
    const std::string s(len, 'x');
    expect_parity(s);
    // One distinct symbol must give exactly zero at every level.
    for (const DispatchLevel level : available_levels()) {
      EXPECT_EQ(0.0, shannon_entropy_at(level, s)) << level_name(level);
    }
  }
}

TEST(SimdKernelsTest, ParityOnFullByteAlphabet) {
  // All 256 byte values, including 0x00 and 0xff: the histogram kernels
  // must not confuse real NUL bytes with buffer padding.
  std::string all;
  for (int c = 0; c < 256; ++c) all.push_back(static_cast<char>(c));
  expect_parity(all);
  EXPECT_EQ(8.0, shannon_entropy(all));

  std::string nuls(64, '\0');
  expect_parity(nuls);
  EXPECT_EQ(0.0, shannon_entropy(nuls));

  std::string highs(33, '\xff');
  highs += std::string(31, '\0');
  expect_parity(highs);
}

TEST(SimdKernelsTest, SeededFuzzParity) {
  std::mt19937 rng(0xd15c0u);
  std::uniform_int_distribution<int> len_dist(0, 255);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  std::uniform_int_distribution<int> mode_dist(0, 2);
  std::string s;
  for (int iter = 0; iter < 2000; ++iter) {
    const int len = len_dist(rng);
    const int mode = mode_dist(rng);
    s.clear();
    for (int i = 0; i < len; ++i) {
      // Mix full-range bytes, narrow alphabets (high counts per symbol),
      // and hostname-ish characters.
      int c = byte_dist(rng);
      if (mode == 1) c = 'a' + c % 4;
      if (mode == 2) c = "abcdefghijklmnopqrstuvwxyz0123456789-_."[c % 39];
      s.push_back(static_cast<char>(c));
    }
    expect_parity(s);
  }
}

TEST(SimdKernelsTest, LutEntropyMatchesReferenceFormula) {
  // The LUT path computes H = log2(n) - sum(k log2 k)/n; the pre-rewrite
  // code computed -sum(p log2 p).  Algebraically equal; numerically they
  // must agree to 1e-12 on every realistic input.
  std::mt19937 rng(0xfeedu);
  std::uniform_int_distribution<int> len_dist(2, 255);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  for (int iter = 0; iter < 500; ++iter) {
    std::string s;
    const int len = len_dist(rng);
    for (int i = 0; i < len; ++i) {
      s.push_back(static_cast<char>(byte_dist(rng) % (iter % 2 ? 256 : 8)));
    }
    EXPECT_NEAR(reference_entropy(s), shannon_entropy(s), 1e-12) << s;
  }
  EXPECT_NEAR(reference_entropy("abracadabra"), shannon_entropy("abracadabra"),
              1e-12);
  EXPECT_NEAR(2.0, shannon_entropy("abcd"), 1e-12);
}

TEST(SimdKernelsTest, EntropyNeverNegative) {
  std::mt19937 rng(7u);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  for (int len = 0; len <= 128; ++len) {
    std::string s;
    for (int i = 0; i < len; ++i) {
      s.push_back(static_cast<char>(byte_dist(rng) % 3));
    }
    EXPECT_GE(shannon_entropy(s), 0.0);
  }
}

TEST(SimdKernelsTest, UtilShannonEntropyRoutesThroughKernels) {
  // util/entropy.h's scalar entry point and the kernel layer are the same
  // code path now; they must agree bitwise.
  const std::string_view cases[] = {"", "a", "abracadabra", "x9f2-k_q",
                                    "aaaaaaaaaaaaaaaaaaaaaaaaaa"};
  for (const std::string_view s : cases) {
    EXPECT_EQ(kernels::shannon_entropy(s), dnsnoise::shannon_entropy(s));
  }
}

TEST(SimdKernelsTest, EntropyManyMatchesPerString) {
  std::vector<std::string> storage = {
      "", "a", "abracadabra", "mail", "x7f2-dk01", "cdn-edge-fra-07",
      "zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz"};
  std::vector<std::string_view> views(storage.begin(), storage.end());
  std::vector<double> out(views.size(), -1.0);
  entropy_many(views, out);
  for (std::size_t i = 0; i < views.size(); ++i) {
    EXPECT_EQ(shannon_entropy(views[i]), out[i]) << storage[i];
  }
}

TEST(SimdKernelsTest, NameTableEntropyManyWalksInternedNames) {
  NameTable table;
  std::vector<NameId> ids;
  std::vector<std::string> names = {"mail.example.com", "x7f2.d.example.net",
                                    "a.b", "singleton"};
  for (const std::string& n : names) ids.push_back(table.intern(n));
  std::vector<double> out(ids.size(), -1.0);
  dnsnoise::entropy_many(ids, table, out);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(shannon_entropy(names[i]), out[i]) << names[i];
  }
}

// ---------------------------------------------------------------------------
// normalize_name parity + semantics

struct ScanResult {
  NameScan scan;
  std::string out;
  std::vector<std::uint16_t> offsets;
};

ScanResult scan_at(DispatchLevel level, std::string_view in) {
  ScanResult r;
  char out[256] = {};
  std::uint16_t offsets[130] = {};
  r.scan = normalize_name_at(level, in, out, offsets);
  if (r.scan.ok) {
    r.out.assign(out, in.size());
    r.offsets.assign(offsets, offsets + r.scan.label_count);
  }
  return r;
}

void expect_scan_parity(std::string_view in) {
  const ScanResult scalar = scan_at(DispatchLevel::kScalar, in);
  for (const DispatchLevel level : available_levels()) {
    const ScanResult r = scan_at(level, in);
    EXPECT_EQ(scalar.scan.ok, r.scan.ok)
        << level_name(level) << " in=" << in;
    if (!scalar.scan.ok || !r.scan.ok) continue;
    EXPECT_EQ(scalar.scan.label_count, r.scan.label_count)
        << level_name(level) << " in=" << in;
    EXPECT_EQ(scalar.out, r.out) << level_name(level) << " in=" << in;
    EXPECT_EQ(scalar.offsets, r.offsets) << level_name(level) << " in=" << in;
  }
}

TEST(SimdKernelsTest, NormalizeLowercasesAndIndexesLabels) {
  for (const DispatchLevel level : available_levels()) {
    const ScanResult r = scan_at(level, "WWW.Example.COM");
    ASSERT_TRUE(r.scan.ok) << level_name(level);
    EXPECT_EQ("www.example.com", r.out) << level_name(level);
    EXPECT_EQ((std::vector<std::uint16_t>{0, 4, 12}), r.offsets)
        << level_name(level);
  }
}

TEST(SimdKernelsTest, NormalizeAcceptsLdhUnderscore) {
  for (const DispatchLevel level : available_levels()) {
    EXPECT_TRUE(scan_at(level, "_dmarc.mail-01.example9.com").scan.ok)
        << level_name(level);
  }
}

TEST(SimdKernelsTest, NormalizeRejectsMalformedNames) {
  const std::string_view bad[] = {
      "exa mple.com",        // space
      "exam!ple.com",        // punctuation outside LDH+underscore
      "a..b",                // empty middle label
      ".leading.dot",        // empty first label
      std::string_view("a\0b", 3),  // embedded NUL
      "caf\xc3\xa9.com",     // non-ASCII bytes
  };
  for (const std::string_view in : bad) {
    for (const DispatchLevel level : available_levels()) {
      EXPECT_FALSE(scan_at(level, in).scan.ok)
          << level_name(level) << " in=" << in;
    }
  }
  // 63-byte label is the RFC ceiling; 64 is malformed.
  const std::string label63(63, 'a');
  const std::string label64(64, 'a');
  for (const DispatchLevel level : available_levels()) {
    EXPECT_TRUE(scan_at(level, label63 + ".com").scan.ok) << level_name(level);
    EXPECT_FALSE(scan_at(level, label64 + ".com").scan.ok)
        << level_name(level);
  }
}

TEST(SimdKernelsTest, NormalizeParityAcrossLengths) {
  // Valid hostname characters across every chunk boundary up to the
  // 253-byte ceiling, with a dot sprinkled every 9 bytes.
  std::string s;
  for (std::size_t len = 1; len <= 253; ++len) {
    s.clear();
    for (std::size_t i = 0; i < len; ++i) {
      if (i % 9 == 8 && i + 1 < len) {
        s.push_back('.');
      } else {
        s.push_back(static_cast<char>((i % 2 ? 'A' : 'a') + (i * 5) % 26));
      }
    }
    expect_scan_parity(s);
  }
}

TEST(SimdKernelsTest, SeededFuzzNormalizeParity) {
  std::mt19937 rng(0xbadd06u);
  std::uniform_int_distribution<int> len_dist(1, 253);
  std::uniform_int_distribution<int> mode_dist(0, 2);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  const std::string_view good =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_.";
  std::string s;
  for (int iter = 0; iter < 2000; ++iter) {
    const int len = len_dist(rng);
    const int mode = mode_dist(rng);
    s.clear();
    for (int i = 0; i < len; ++i) {
      const int c = byte_dist(rng);
      // Mode 0: mostly-valid names (reject path depends on label layout);
      // mode 1: raw bytes (reject path depends on classification);
      // mode 2: valid chars with dot clusters (empty-label detection).
      if (mode == 0 || (mode == 2 && c % 5 != 0)) {
        s.push_back(good[c % good.size()]);
      } else if (mode == 2) {
        s.push_back('.');
      } else {
        s.push_back(static_cast<char>(c));
      }
    }
    expect_scan_parity(s);
  }
}

}  // namespace
}  // namespace dnsnoise::kernels
