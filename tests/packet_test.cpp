#include "netio/packet.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace dnsnoise {
namespace {

std::vector<std::uint8_t> payload_bytes(const char* text) {
  const std::string s(text);
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

TEST(PacketTest, Udp4RoundTrip) {
  const auto payload = payload_bytes("hello dns");
  const Ipv4 src = *parse_ipv4("10.0.0.53");
  const Ipv4 dst = *parse_ipv4("192.168.1.2");
  const auto frame = build_udp4_frame(src, 53, dst, 4242, payload);

  const auto parsed = parse_frame(frame);
  ASSERT_TRUE(parsed);
  EXPECT_FALSE(parsed->src.is_v6);
  EXPECT_EQ(parsed->src.v4, src);
  EXPECT_EQ(parsed->dst.v4, dst);
  EXPECT_EQ(parsed->src.port, 53);
  EXPECT_EQ(parsed->dst.port, 4242);
  EXPECT_EQ(std::vector<std::uint8_t>(parsed->payload.begin(),
                                      parsed->payload.end()),
            payload);
}

TEST(PacketTest, Udp4ChecksumValid) {
  const auto frame = build_udp4_frame(*parse_ipv4("1.2.3.4"), 53,
                                      *parse_ipv4("5.6.7.8"), 9999,
                                      payload_bytes("x"));
  EXPECT_TRUE(verify_ipv4_checksum(frame));
}

TEST(PacketTest, CorruptedChecksumDetected) {
  auto frame = build_udp4_frame(*parse_ipv4("1.2.3.4"), 53,
                                *parse_ipv4("5.6.7.8"), 9999,
                                payload_bytes("x"));
  frame[14 + 8] ^= 0xff;  // flip the TTL byte inside the IP header
  EXPECT_FALSE(verify_ipv4_checksum(frame));
}

TEST(PacketTest, Udp6RoundTrip) {
  const Ipv6 src = *parse_ipv6("2001:db8::1");
  const Ipv6 dst = *parse_ipv6("2001:db8::2");
  const auto payload = payload_bytes("v6 payload");
  const auto frame = build_udp6_frame(src, 53, dst, 1234, payload);

  const auto parsed = parse_frame(frame);
  ASSERT_TRUE(parsed);
  EXPECT_TRUE(parsed->src.is_v6);
  EXPECT_EQ(parsed->src.v6, src);
  EXPECT_EQ(parsed->dst.v6, dst);
  EXPECT_EQ(parsed->src.port, 53);
  EXPECT_EQ(parsed->dst.port, 1234);
  EXPECT_EQ(std::vector<std::uint8_t>(parsed->payload.begin(),
                                      parsed->payload.end()),
            payload);
}

TEST(PacketTest, EmptyPayload) {
  const auto frame = build_udp4_frame(*parse_ipv4("1.1.1.1"), 1,
                                      *parse_ipv4("2.2.2.2"), 2, {});
  const auto parsed = parse_frame(frame);
  ASSERT_TRUE(parsed);
  EXPECT_TRUE(parsed->payload.empty());
}

TEST(PacketTest, RejectsNonIpEthertype) {
  std::vector<std::uint8_t> frame(60, 0);
  frame[12] = 0x08;
  frame[13] = 0x06;  // ARP
  EXPECT_FALSE(parse_frame(frame));
}

TEST(PacketTest, RejectsNonUdpProtocol) {
  auto frame = build_udp4_frame(*parse_ipv4("1.1.1.1"), 1,
                                *parse_ipv4("2.2.2.2"), 2,
                                payload_bytes("x"));
  frame[14 + 9] = 6;  // TCP
  EXPECT_FALSE(parse_frame(frame));
}

TEST(PacketTest, RejectsTruncatedFrames) {
  const auto frame = build_udp4_frame(*parse_ipv4("1.1.1.1"), 1,
                                      *parse_ipv4("2.2.2.2"), 2,
                                      payload_bytes("payload!"));
  // Property: every strict prefix must be rejected (the UDP length field
  // makes the full frame self-delimiting).
  for (std::size_t len = 0; len < frame.size(); ++len) {
    EXPECT_FALSE(parse_frame(std::span<const std::uint8_t>(frame.data(), len)))
        << "prefix length " << len;
  }
}

TEST(PacketTest, InetChecksumKnownVector) {
  // RFC 1071 example: checksum of this sequence is 0xddf2's complement.
  const std::vector<std::uint8_t> data = {0x00, 0x01, 0xf2, 0x03,
                                          0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(inet_checksum(data), 0x220d);
}

TEST(PacketTest, InetChecksumOddLength) {
  const std::vector<std::uint8_t> data = {0xff};
  EXPECT_EQ(inet_checksum(data), static_cast<std::uint16_t>(~0xff00));
}

class PacketFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PacketFuzzTest, RandomFramesNeverCrash) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 1000; ++trial) {
    std::vector<std::uint8_t> frame(rng.below(120));
    for (auto& b : frame) b = static_cast<std::uint8_t>(rng.below(256));
    (void)parse_frame(frame);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PacketFuzzTest, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace dnsnoise
