// End-to-end observability: a MiningSession run with metrics enabled must
// produce a snapshot with counters/timers from all four pipeline stages
// (workload, cluster, engine, miner), metrics must never change mining
// results, and disabled sessions must carry no registry at all.

#include <gtest/gtest.h>

#include <string_view>

#include "engine/parallel_miner.h"
#include "obs/json_snapshot.h"
#include "obs/metrics.h"

namespace dnsnoise {
namespace {

ScenarioScale small_scale() {
  ScenarioScale scale;
  scale.queries_per_day = 30'000;
  scale.client_count = 1'500;
  scale.population_scale = 0.5;
  return scale;
}

ClusterConfig small_cluster() {
  ClusterConfig cluster;
  cluster.server_count = 4;
  return cluster;
}

bool has_sample_with_prefix(const obs::MetricsSnapshot& snapshot,
                            std::string_view prefix) {
  for (const obs::MetricSample& sample : snapshot.samples) {
    if (sample.name.starts_with(prefix)) return true;
  }
  return false;
}

TEST(ObsPipeline, DisabledByDefault) {
  MiningSession session(small_scale());
  session.cluster(small_cluster()).warmup(false);
  EXPECT_EQ(session.metrics(), nullptr);
  const MiningDayResult result = session.run(ScenarioDate::kNov14);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_TRUE(result.metrics_json.empty());
}

TEST(ObsPipeline, SnapshotCoversAllFourStages) {
  MiningSession session(small_scale());
  session.cluster(small_cluster()).warmup(false).threads(2).enable_metrics();
  ASSERT_NE(session.metrics(), nullptr);

  const MiningDayResult result = session.run(ScenarioDate::kNov14);
  ASSERT_TRUE(result.ok()) << result.error;

  const obs::MetricsSnapshot snapshot = session.metrics()->snapshot();
  EXPECT_TRUE(has_sample_with_prefix(snapshot, "workload."));
  EXPECT_TRUE(has_sample_with_prefix(snapshot, "cluster."));
  EXPECT_TRUE(has_sample_with_prefix(snapshot, "engine."));
  EXPECT_TRUE(has_sample_with_prefix(snapshot, "miner."));

  // The result carries the same snapshot serialized.
  ASSERT_FALSE(result.metrics_json.empty());
  EXPECT_NE(result.metrics_json.find("\"workload.queries_generated\""),
            std::string::npos);
  EXPECT_NE(result.metrics_json.find("\"miner.zones_visited\""),
            std::string::npos);
}

TEST(ObsPipeline, WorkloadCountersMatchEngineReport) {
  MiningSession session(small_scale());
  session.cluster(small_cluster()).warmup(false).enable_metrics();
  DayCapture capture;
  const EngineReport report = session.simulate(ScenarioDate::kNov14, capture);
  ASSERT_TRUE(report.ok()) << report.error;

  obs::MetricsRegistry& metrics = *session.metrics();
  // Valid-name queries reach the cluster; the generator counts everything
  // it emits, so generated >= fed and every fed query was answered below.
  EXPECT_GE(metrics.counter("workload.queries_generated").value(),
            report.queries);
  EXPECT_EQ(metrics.counter("cluster.below_answers").value(), report.queries);
  // With 4 shards, each shard's generator skips the other shards' slots.
  EXPECT_GT(metrics.counter("workload.shard_slots_skipped").value(), 0u);
  // One run_day_shard call per shard.
  EXPECT_EQ(metrics.counter("workload.days_generated").value(),
            report.shard_count);
}

TEST(ObsPipeline, PerServerCountersSumToClusterTotals) {
  MiningSession session(small_scale());
  session.cluster(small_cluster()).warmup(false).enable_metrics();
  DayCapture capture;
  const EngineReport report = session.simulate(ScenarioDate::kNov14, capture);
  ASSERT_TRUE(report.ok()) << report.error;

  obs::MetricsRegistry& metrics = *session.metrics();
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (std::size_t server = 0; server < report.shard_count; ++server) {
    const std::string prefix = "cluster.server" + std::to_string(server);
    hits += metrics.counter(prefix + ".cache_hits").value();
    misses += metrics.counter(prefix + ".cache_misses").value();
  }
  EXPECT_GT(hits, 0u);
  EXPECT_GT(misses, 0u);
  EXPECT_EQ(hits + misses, report.queries);
  EXPECT_EQ(misses, report.counters.above_answers);
}

TEST(ObsPipeline, ShardTimerCountsShards) {
  MiningSession session(small_scale());
  session.cluster(small_cluster()).warmup(false).threads(2).enable_metrics();
  DayCapture capture;
  const EngineReport report = session.simulate(ScenarioDate::kNov14, capture);
  ASSERT_TRUE(report.ok()) << report.error;

  const obs::MetricsSnapshot snapshot = session.metrics()->snapshot();
  const obs::MetricSample* shard = snapshot.find("engine.shard");
  ASSERT_NE(shard, nullptr);
  EXPECT_EQ(shard->count, report.shard_count);
  const obs::MetricSample* merge = snapshot.find("engine.merge");
  ASSERT_NE(merge, nullptr);
  EXPECT_EQ(merge->count, 1u);
  // Per-shard wall gauges exist for every shard.
  for (std::size_t i = 0; i < report.shard_count; ++i) {
    EXPECT_NE(snapshot.find("engine.shard" + std::to_string(i) +
                            ".wall_seconds"),
              nullptr);
  }
}

TEST(ObsPipeline, MetricsDoNotChangeFindings) {
  MiningSession plain(small_scale());
  plain.cluster(small_cluster()).warmup(false);
  const MiningDayResult without = plain.run(ScenarioDate::kNov14);
  ASSERT_TRUE(without.ok()) << without.error;

  MiningSession instrumented(small_scale());
  instrumented.cluster(small_cluster()).warmup(false).enable_metrics();
  const MiningDayResult with = instrumented.run(ScenarioDate::kNov14);
  ASSERT_TRUE(with.ok()) << with.error;

  ASSERT_EQ(without.findings.size(), with.findings.size());
  for (std::size_t i = 0; i < without.findings.size(); ++i) {
    EXPECT_EQ(without.findings[i].zone, with.findings[i].zone);
    EXPECT_EQ(without.findings[i].depth, with.findings[i].depth);
    EXPECT_DOUBLE_EQ(without.findings[i].confidence,
                     with.findings[i].confidence);
  }
}

TEST(ObsPipeline, ClassicPipelinePathIsInstrumentedToo) {
  obs::MetricsRegistry registry;
  PipelineOptions options;
  options.scale = small_scale();
  options.cluster = small_cluster();
  options.warmup = false;
  options.metrics = &registry;
  const MiningDayResult result = run_mining_day(ScenarioDate::kNov14, options);
  ASSERT_TRUE(result.ok()) << result.error;
  ASSERT_FALSE(result.metrics_json.empty());

  const obs::MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_TRUE(has_sample_with_prefix(snapshot, "workload."));
  EXPECT_TRUE(has_sample_with_prefix(snapshot, "cluster."));
  EXPECT_TRUE(has_sample_with_prefix(snapshot, "miner."));
  ASSERT_NE(snapshot.find("cluster.simulate"), nullptr);
  EXPECT_EQ(snapshot.find("cluster.simulate")->count, 1u);
  ASSERT_NE(snapshot.find("miner.mine"), nullptr);
  // Tap batches were sized and recorded.
  const obs::MetricSample* batches = snapshot.find("cluster.tap_batch_size");
  ASSERT_NE(batches, nullptr);
  EXPECT_GT(batches->count, 0u);
}

TEST(ObsPipeline, ReenablingResetsTheRegistry) {
  MiningSession session(small_scale());
  session.cluster(small_cluster()).warmup(false).enable_metrics();
  DayCapture capture;
  ASSERT_TRUE(session.simulate(ScenarioDate::kNov14, capture).ok());
  EXPECT_GT(session.metrics()->size(), 0u);
  session.enable_metrics();  // fresh registry
  EXPECT_EQ(session.metrics()->size(), 0u);
  session.enable_metrics(false);
  EXPECT_EQ(session.metrics(), nullptr);
}

}  // namespace
}  // namespace dnsnoise
