#include "features/chr.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace dnsnoise {
namespace {

TEST(ChrTest, CountsBelowAndAbove) {
  CacheHitRateTracker tracker;
  tracker.record_below("a.com", RRType::A, "1.1.1.1");
  tracker.record_below("a.com", RRType::A, "1.1.1.1");
  tracker.record_above("a.com", RRType::A, "1.1.1.1");
  const auto* counts = tracker.find({"a.com", RRType::A, "1.1.1.1"});
  ASSERT_NE(counts, nullptr);
  EXPECT_EQ(counts->below, 2u);
  EXPECT_EQ(counts->above, 1u);
  EXPECT_EQ(tracker.unique_rrs(), 1u);
}

TEST(ChrTest, DistinctRdataAreDistinctRrs) {
  CacheHitRateTracker tracker;
  tracker.record_below("a.com", RRType::A, "1.1.1.1");
  tracker.record_below("a.com", RRType::A, "2.2.2.2");
  tracker.record_below("a.com", RRType::AAAA, "2001:db8::1");
  EXPECT_EQ(tracker.unique_rrs(), 3u);
  EXPECT_EQ(tracker.rrs_of_name("a.com").size(), 3u);
}

TEST(ChrTest, DhrDefinition) {
  // Paper III-C2: DHR = cache hits / total queries; hits = below - above.
  CacheHitRateTracker::Counts counts;
  counts.below = 5;
  counts.above = 2;
  EXPECT_DOUBLE_EQ(CacheHitRateTracker::dhr(counts), 0.6);
}

TEST(ChrTest, DhrEdgeCases) {
  CacheHitRateTracker::Counts never_queried{0, 3, 0};
  EXPECT_EQ(CacheHitRateTracker::dhr(never_queried), 0.0);
  CacheHitRateTracker::Counts more_misses{2, 5, 0};
  EXPECT_EQ(CacheHitRateTracker::dhr(more_misses), 0.0);
  CacheHitRateTracker::Counts all_hits{4, 0, 0};
  EXPECT_EQ(CacheHitRateTracker::dhr(all_hits), 1.0);
}

TEST(ChrTest, PaperWorkedExample) {
  // Paper III-C2: an object with 2 misses and 5 total queries has CHR 0.6
  // for both misses.
  CacheHitRateTracker tracker;
  for (int i = 0; i < 5; ++i) {
    tracker.record_below("obj.example.com", RRType::A, "9.9.9.9");
  }
  for (int i = 0; i < 2; ++i) {
    tracker.record_above("obj.example.com", RRType::A, "9.9.9.9");
  }
  const auto distribution = tracker.chr_distribution();
  ASSERT_EQ(distribution.size(), 2u);
  EXPECT_DOUBLE_EQ(distribution[0], 0.6);
  EXPECT_DOUBLE_EQ(distribution[1], 0.6);
}

TEST(ChrTest, ChrDistributionIsMissWeighted) {
  CacheHitRateTracker tracker;
  // RR 1: 10 queries, 1 miss -> one 0.9 sample.
  for (int i = 0; i < 10; ++i) tracker.record_below("a.com", RRType::A, "1");
  tracker.record_above("a.com", RRType::A, "1");
  // RR 2: 3 queries, 3 misses -> three 0.0 samples.
  for (int i = 0; i < 3; ++i) {
    tracker.record_below("b.com", RRType::A, "2");
    tracker.record_above("b.com", RRType::A, "2");
  }
  auto distribution = tracker.chr_distribution();
  std::sort(distribution.begin(), distribution.end());
  ASSERT_EQ(distribution.size(), 4u);
  EXPECT_DOUBLE_EQ(distribution[0], 0.0);
  EXPECT_DOUBLE_EQ(distribution[2], 0.0);
  EXPECT_DOUBLE_EQ(distribution[3], 0.9);
}

TEST(ChrTest, AllDhrAlignsWithEntries) {
  CacheHitRateTracker tracker;
  tracker.record_below("a.com", RRType::A, "1");
  tracker.record_below("b.com", RRType::A, "2");
  tracker.record_above("b.com", RRType::A, "2");
  const auto dhr = tracker.all_dhr();
  ASSERT_EQ(dhr.size(), 2u);
  EXPECT_DOUBLE_EQ(dhr[0], 1.0);  // a.com: no misses observed
  EXPECT_DOUBLE_EQ(dhr[1], 0.0);  // b.com: 1 query, 1 miss
}

TEST(ChrTest, TtlRecordedOnFirstObservation) {
  CacheHitRateTracker tracker;
  tracker.record_above("a.com", RRType::A, "1", 300);
  tracker.record_below("a.com", RRType::A, "1", 999);  // ignored: not first
  const auto* counts = tracker.find({"a.com", RRType::A, "1"});
  ASSERT_NE(counts, nullptr);
  EXPECT_EQ(counts->ttl, 300u);
}

TEST(ChrTest, RrsOfUnknownNameIsEmpty) {
  const CacheHitRateTracker tracker;
  EXPECT_TRUE(tracker.rrs_of_name("nope.com").empty());
}

}  // namespace
}  // namespace dnsnoise
