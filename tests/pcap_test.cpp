#include "netio/pcap.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "util/rng.h"

namespace dnsnoise {
namespace {

std::vector<std::uint8_t> random_frame(Rng& rng, std::size_t size) {
  std::vector<std::uint8_t> frame(size);
  for (auto& b : frame) b = static_cast<std::uint8_t>(rng.below(256));
  return frame;
}

TEST(PcapTest, RoundTripMicroseconds) {
  Rng rng(1);
  PcapWriter writer(/*nanosecond=*/false);
  const auto f1 = random_frame(rng, 64);
  const auto f2 = random_frame(rng, 1200);
  writer.write(100, 5000, f1);
  writer.write(101, 999'999'000, f2);
  EXPECT_EQ(writer.packet_count(), 2u);

  PcapReader reader(writer.bytes());
  EXPECT_FALSE(reader.nanosecond());
  EXPECT_FALSE(reader.swapped());
  EXPECT_EQ(reader.link_type(), 1u);  // Ethernet

  auto r1 = reader.next();
  ASSERT_TRUE(r1);
  EXPECT_EQ(r1->ts_sec, 100u);
  EXPECT_EQ(r1->ts_nsec, 5000u);  // microsecond file: 5us -> 5000ns
  EXPECT_EQ(r1->data, f1);

  auto r2 = reader.next();
  ASSERT_TRUE(r2);
  EXPECT_EQ(r2->ts_sec, 101u);
  EXPECT_EQ(r2->data, f2);

  EXPECT_FALSE(reader.next());
}

TEST(PcapTest, RoundTripNanoseconds) {
  Rng rng(2);
  PcapWriter writer(/*nanosecond=*/true);
  const auto frame = random_frame(rng, 80);
  writer.write(7, 123'456'789, frame);
  PcapReader reader(writer.bytes());
  EXPECT_TRUE(reader.nanosecond());
  auto record = reader.next();
  ASSERT_TRUE(record);
  EXPECT_EQ(record->ts_nsec, 123'456'789u);
}

TEST(PcapTest, MicrosecondPrecisionTruncates) {
  PcapWriter writer(false);
  writer.write(1, 1234, std::vector<std::uint8_t>{0xab});
  PcapReader reader(writer.bytes());
  auto record = reader.next();
  ASSERT_TRUE(record);
  EXPECT_EQ(record->ts_nsec, 1000u);  // 1234ns -> 1us -> back to 1000ns
}

TEST(PcapTest, EmptyStreamIteration) {
  const PcapWriter writer;
  PcapReader reader(writer.bytes());
  EXPECT_FALSE(reader.next());
}

TEST(PcapTest, BadMagicThrows) {
  std::vector<std::uint8_t> junk(24, 0x42);
  EXPECT_THROW(PcapReader{junk}, std::invalid_argument);
}

TEST(PcapTest, TruncatedGlobalHeaderThrows) {
  const std::vector<std::uint8_t> tiny(10, 0);
  EXPECT_THROW(PcapReader{tiny}, std::invalid_argument);
}

TEST(PcapTest, TruncatedRecordStopsIteration) {
  Rng rng(3);
  PcapWriter writer;
  writer.write(1, 0, random_frame(rng, 100));
  auto bytes = writer.bytes();
  bytes.resize(bytes.size() - 10);  // chop the last frame's tail
  PcapReader reader(bytes);
  EXPECT_FALSE(reader.next());
}

TEST(PcapTest, SwappedEndianness) {
  // Hand-build a big-endian (swapped relative to us) header + one record.
  auto put_be = [](std::vector<std::uint8_t>& out, std::uint32_t v) {
    out.push_back(static_cast<std::uint8_t>(v >> 24));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v));
  };
  std::vector<std::uint8_t> bytes;
  put_be(bytes, 0xa1b2c3d4);  // reads as swapped magic on LE readers
  put_be(bytes, 0x00020004);
  put_be(bytes, 0);
  put_be(bytes, 0);
  put_be(bytes, 65535);
  put_be(bytes, 1);
  put_be(bytes, 42);   // ts_sec
  put_be(bytes, 10);   // ts_usec
  put_be(bytes, 3);    // incl_len
  put_be(bytes, 3);    // orig_len
  bytes.push_back(0xaa);
  bytes.push_back(0xbb);
  bytes.push_back(0xcc);
  PcapReader reader(bytes);
  EXPECT_TRUE(reader.swapped());
  auto record = reader.next();
  ASSERT_TRUE(record);
  EXPECT_EQ(record->ts_sec, 42u);
  EXPECT_EQ(record->data.size(), 3u);
}

TEST(PcapTest, SaveAndLoadFile) {
  Rng rng(4);
  PcapWriter writer;
  const auto frame = random_frame(rng, 60);
  writer.write(9, 0, frame);
  const std::string path =
      (std::filesystem::temp_directory_path() / "dnsnoise_pcap_test.pcap")
          .string();
  writer.save(path);
  const auto bytes = PcapReader::load_file(path);
  EXPECT_EQ(bytes, writer.bytes());
  PcapReader reader(bytes);
  auto record = reader.next();
  ASSERT_TRUE(record);
  EXPECT_EQ(record->data, frame);
  std::remove(path.c_str());
}

TEST(PcapTest, LoadMissingFileThrows) {
  EXPECT_THROW(PcapReader::load_file("/no/such/file.pcap"),
               std::runtime_error);
}

TEST(PcapTest, ZeroCopyViewsMatchCopies) {
  Rng rng(5);
  PcapWriter writer;
  std::vector<std::vector<std::uint8_t>> frames;
  for (int i = 0; i < 20; ++i) {
    frames.push_back(random_frame(rng, 20 + rng.below(200)));
    writer.write(static_cast<std::uint32_t>(i), 0, frames.back());
  }
  PcapReader reader(writer.bytes());
  for (int i = 0; i < 20; ++i) {
    auto view = reader.next_view();
    ASSERT_TRUE(view);
    EXPECT_EQ(std::vector<std::uint8_t>(view->data.begin(), view->data.end()),
              frames[static_cast<std::size_t>(i)]);
  }
  EXPECT_FALSE(reader.next_view());
}

}  // namespace
}  // namespace dnsnoise
