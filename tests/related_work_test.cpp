#include "analytics/related_work.h"

#include <gtest/gtest.h>

namespace dnsnoise {
namespace {

FpDnsEntry below_entry(const char* qname, RCode rcode,
                       std::uint64_t client = 1) {
  FpDnsEntry entry;
  entry.ts = 100;
  entry.client_id = client;
  entry.direction = FpDirection::kBelow;
  entry.rcode = rcode;
  entry.qname = qname;
  entry.qtype = RRType::A;
  entry.rdata = rcode == RCode::NoError ? "192.0.2.1" : "";
  return entry;
}

bool fake_disposable(const DomainName& name) {
  return name.is_within("avqs.vendor.com");
}

TEST(TaxonomyTest, SplitsThreeCategories) {
  FpDnsDataset fpdns;
  fpdns.add(below_entry("www.google.com", RCode::NoError));
  fpdns.add(below_entry("mail.google.com", RCode::NoError));
  fpdns.add(below_entry("abc123.avqs.vendor.com", RCode::NoError));
  fpdns.add(below_entry("nxjunk.com", RCode::NXDomain));

  const TrafficTaxonomy taxonomy = classify_taxonomy(fpdns, fake_disposable);
  EXPECT_EQ(taxonomy.canonical, 2u);
  EXPECT_EQ(taxonomy.overloaded, 1u);
  EXPECT_EQ(taxonomy.unwanted, 1u);
  EXPECT_EQ(taxonomy.total(), 4u);
}

TEST(TaxonomyTest, AboveEntriesAreIgnored) {
  FpDnsDataset fpdns;
  FpDnsEntry above = below_entry("www.google.com", RCode::NoError);
  above.direction = FpDirection::kAbove;
  fpdns.add(above);
  EXPECT_EQ(classify_taxonomy(fpdns, fake_disposable).total(), 0u);
}

std::string fake_zone_of(const DomainName& name) {
  return name.is_within("avqs.vendor.com") ? "avqs.vendor.com" : "";
}

TEST(CovertChannelTest, MetersPayloadBytesPerClientZone) {
  FpDnsDataset fpdns;
  // Client 1 sends two names; payload = name length minus zone length.
  fpdns.add(below_entry("aaaa.avqs.vendor.com", RCode::NoError, 1));
  fpdns.add(below_entry("bbbbbbbb.avqs.vendor.com", RCode::NoError, 1));
  // Client 2 sends one; non-disposable names are not metered.
  fpdns.add(below_entry("cc.avqs.vendor.com", RCode::NoError, 2));
  fpdns.add(below_entry("www.google.com", RCode::NoError, 2));

  const CovertChannelStudy study =
      covert_channel_study(fpdns, fake_zone_of, /*threshold=*/10);
  ASSERT_EQ(study.per_client_zone_bytes.size(), 2u);
  // Client 1: 5 + 9 = 14 payload bytes ("aaaa." and "bbbbbbbb.").
  EXPECT_EQ(study.per_client_zone_bytes[0], 14u);
  // Client 2: 3 bytes ("cc.").
  EXPECT_EQ(study.per_client_zone_bytes[1], 3u);
  // One of two channels is under the 10-byte threshold.
  EXPECT_DOUBLE_EQ(study.under_threshold_fraction, 0.5);
  // The zone's collective footprint aggregates both clients.
  EXPECT_EQ(study.busiest_zone_bytes, 17u);
}

TEST(CovertChannelTest, EmptyDataset) {
  const FpDnsDataset fpdns;
  const CovertChannelStudy study = covert_channel_study(fpdns, fake_zone_of);
  EXPECT_TRUE(study.per_client_zone_bytes.empty());
  EXPECT_EQ(study.under_threshold_fraction, 0.0);
  EXPECT_EQ(study.busiest_zone_bytes, 0u);
  EXPECT_EQ(study.threshold, 4096u);
}

TEST(CovertChannelTest, StealthyButCollectivelyVisible) {
  // The paper's claim in miniature: 50 clients each send a little (under
  // the bound), but the zone's aggregate dwarfs it.
  FpDnsDataset fpdns;
  for (std::uint64_t client = 1; client <= 50; ++client) {
    for (int i = 0; i < 4; ++i) {
      const std::string name = "h" + std::to_string(client * 100 + i) +
                               "xxxxxxxxxxxxxxxx.avqs.vendor.com";
      fpdns.add(below_entry(name.c_str(), RCode::NoError, client));
    }
  }
  const CovertChannelStudy study =
      covert_channel_study(fpdns, fake_zone_of, /*threshold=*/4096);
  EXPECT_DOUBLE_EQ(study.under_threshold_fraction, 1.0);  // all stealthy
  EXPECT_GT(study.busiest_zone_bytes, study.threshold);   // zone visible
}

}  // namespace
}  // namespace dnsnoise
