#include "ml/eval.h"

#include <gtest/gtest.h>

#include <memory>

#include "ml/baselines.h"
#include "util/rng.h"

namespace dnsnoise {
namespace {

TEST(ConfusionTest, CountsAtThreshold) {
  const std::vector<double> scores = {0.9, 0.8, 0.3, 0.1};
  const std::vector<int> labels = {1, 0, 1, 0};
  const Confusion c = confusion_at(scores, labels, 0.5);
  EXPECT_EQ(c.tp, 1u);
  EXPECT_EQ(c.fp, 1u);
  EXPECT_EQ(c.fn, 1u);
  EXPECT_EQ(c.tn, 1u);
  EXPECT_DOUBLE_EQ(c.tpr(), 0.5);
  EXPECT_DOUBLE_EQ(c.fpr(), 0.5);
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.5);
  EXPECT_DOUBLE_EQ(c.precision(), 0.5);
}

TEST(ConfusionTest, ThresholdIsInclusive) {
  const std::vector<double> scores = {0.5};
  const std::vector<int> labels = {1};
  EXPECT_EQ(confusion_at(scores, labels, 0.5).tp, 1u);
}

TEST(ConfusionTest, EmptyAndDegenerate) {
  const Confusion empty = confusion_at({}, {}, 0.5);
  EXPECT_EQ(empty.accuracy(), 0.0);
  const std::vector<double> scores = {0.9};
  const std::vector<int> labels = {1};
  const Confusion c = confusion_at(scores, labels, 0.5);
  EXPECT_EQ(c.fpr(), 0.0);  // no negatives present
}

TEST(ConfusionTest, SizeMismatchThrows) {
  const std::vector<double> scores = {0.5, 0.6};
  const std::vector<int> labels = {1};
  EXPECT_THROW(confusion_at(scores, labels, 0.5), std::invalid_argument);
}

TEST(RocTest, PerfectRankingHasAucOne) {
  const std::vector<double> scores = {0.9, 0.8, 0.2, 0.1};
  const std::vector<int> labels = {1, 1, 0, 0};
  const auto curve = roc_curve(scores, labels);
  EXPECT_DOUBLE_EQ(auc(curve), 1.0);
  EXPECT_DOUBLE_EQ(curve.front().tpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().tpr, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().fpr, 1.0);
}

TEST(RocTest, InvertedRankingHasAucZero) {
  const std::vector<double> scores = {0.9, 0.8, 0.2, 0.1};
  const std::vector<int> labels = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(auc(roc_curve(scores, labels)), 0.0);
}

TEST(RocTest, RandomScoresGiveAucNearHalf) {
  Rng rng(1);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 4000; ++i) {
    scores.push_back(rng.uniform());
    labels.push_back(static_cast<int>(rng.below(2)));
  }
  EXPECT_NEAR(auc(roc_curve(scores, labels)), 0.5, 0.03);
}

TEST(RocTest, TiedScoresCollapseToOnePoint) {
  const std::vector<double> scores = {0.5, 0.5, 0.5, 0.5};
  const std::vector<int> labels = {1, 0, 1, 0};
  const auto curve = roc_curve(scores, labels);
  // Origin + the single tie point.
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve[1].tpr, 1.0);
  EXPECT_DOUBLE_EQ(curve[1].fpr, 1.0);
  EXPECT_NEAR(auc(curve), 0.5, 1e-12);
}

TEST(RocTest, MonotoneInBothAxes) {
  Rng rng(2);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 500; ++i) {
    const int y = static_cast<int>(rng.below(2));
    scores.push_back(rng.normal(y == 1 ? 1.0 : 0.0, 1.0));
    labels.push_back(y);
  }
  const auto curve = roc_curve(scores, labels);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].tpr, curve[i - 1].tpr);
    EXPECT_GE(curve[i].fpr, curve[i - 1].fpr);
  }
}

TEST(CrossValTest, EverySampleGetsOneOutOfFoldScore) {
  Rng rng(3);
  Dataset data(1);
  for (int i = 0; i < 100; ++i) {
    const double x[1] = {rng.normal(i % 2 == 0 ? -2.0 : 2.0, 0.5)};
    data.add(x, i % 2);
  }
  const auto scores = cross_val_scores(
      data,
      [] {
        return std::make_unique<GaussianNaiveBayes>();
      },
      10, 1);
  ASSERT_EQ(scores.size(), data.size());
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if ((scores[i] >= 0.5) == (data.label(i) == 1)) ++correct;
  }
  EXPECT_GT(correct, data.size() * 9 / 10);
}

TEST(CrossValTest, StratificationKeepsBothClassesPerFold) {
  // With 10 positives in 100 samples, unstratified folds could be empty of
  // positives; stratified ones have exactly one each.
  Rng rng(4);
  Dataset data(1);
  for (int i = 0; i < 100; ++i) {
    const double x[1] = {rng.normal(0, 1)};
    data.add(x, i < 10 ? 1 : 0);
  }
  // Train/test must never throw (an all-one-class test fold is fine, but an
  // all-one-class *training* fold would break some models).
  EXPECT_NO_THROW(cross_val_scores(
      data,
      [] {
        return std::make_unique<LogisticRegression>();
      },
      10, 2));
}

TEST(CrossValTest, InvalidArgsThrow) {
  Dataset data(1);
  const double x[1] = {0.0};
  data.add(x, 0);
  const auto factory = [] {
    return std::make_unique<GaussianNaiveBayes>();
  };
  EXPECT_THROW(cross_val_scores(data, factory, 1, 0), std::invalid_argument);
  EXPECT_THROW(cross_val_scores(data, factory, 5, 0), std::invalid_argument);
}

}  // namespace
}  // namespace dnsnoise
