#include "workload/zone_model.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <unordered_set>

namespace dnsnoise {
namespace {

DisposableZoneModel make_disposable(DisposableZoneConfig config) {
  NamePattern pattern;
  pattern.add(RandomStringLabel::hex(16));
  return DisposableZoneModel(std::move(config), std::move(pattern));
}

TEST(DisposableZoneTest, NamesFallUnderApexAndParse) {
  DisposableZoneConfig config;
  config.apex = "avqs.vendor.com";
  config.repeat_probability = 0.0;
  auto model = make_disposable(config);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const QuerySpec query = model.sample_query(rng);
    const auto name = DomainName::parse(query.qname);
    ASSERT_TRUE(name) << query.qname;
    EXPECT_TRUE(name->is_within("avqs.vendor.com"));
    EXPECT_EQ(name->label_count(), model.name_depth());
  }
  EXPECT_TRUE(model.disposable());
}

TEST(DisposableZoneTest, MostNamesAreOneTime) {
  DisposableZoneConfig config;
  config.apex = "x.vendor.net";
  config.repeat_probability = 0.0;
  auto model = make_disposable(config);
  Rng rng(2);
  std::set<std::string> names;
  for (int i = 0; i < 1000; ++i) names.insert(model.sample_query(rng).qname);
  EXPECT_EQ(names.size(), 1000u);  // hex(16): collisions are negligible
}

TEST(DisposableZoneTest, RepeatProbabilityReusesRecentNames) {
  DisposableZoneConfig config;
  config.apex = "x.vendor.net";
  config.repeat_probability = 0.5;
  config.recent_window = 16;
  auto model = make_disposable(config);
  Rng rng(3);
  std::set<std::string> names;
  constexpr int kQueries = 2000;
  for (int i = 0; i < kQueries; ++i) {
    names.insert(model.sample_query(rng).qname);
  }
  // Roughly half the queries are repeats.
  EXPECT_LT(names.size(), kQueries * 6 / 10);
  EXPECT_GT(names.size(), kQueries * 4 / 10);
}

TEST(DisposableZoneTest, AuthorityAnswersAreDeterministicAndPooled) {
  DisposableZoneConfig config;
  config.apex = "avqs.vendor.com";
  config.rdata_pool = 4;
  auto model = make_disposable(config);
  SyntheticAuthority authority;
  model.install(authority);

  Rng rng(4);
  std::unordered_set<std::string> rdatas;
  for (int i = 0; i < 300; ++i) {
    const QuerySpec query = model.sample_query(rng);
    const Question question{DomainName(query.qname), query.qtype};
    const auto a1 = authority.resolve(question, 0);
    const auto a2 = authority.resolve(question, 999);
    ASSERT_EQ(a1.answers.size(), 1u);
    EXPECT_EQ(a1.answers[0].rdata, a2.answers[0].rdata);  // deterministic
    EXPECT_TRUE(a1.disposable_zone);
    rdatas.insert(a1.answers[0].rdata);
  }
  // One-time names, but only rdata_pool distinct answers.
  EXPECT_LE(rdatas.size(), 4u);
}

TEST(DisposableZoneTest, RoundRobinAnswerSets) {
  DisposableZoneConfig config;
  config.apex = "exp.l.vendor.com";
  config.rdata_pool = 8;
  config.rr_per_answer = 4;
  auto model = make_disposable(config);
  SyntheticAuthority authority;
  model.install(authority);
  Rng rng(5);
  const QuerySpec query = model.sample_query(rng);
  const auto answer =
      authority.resolve({DomainName(query.qname), query.qtype}, 0);
  ASSERT_EQ(answer.answers.size(), 4u);
  std::set<std::string> distinct;
  for (const auto& rr : answer.answers) {
    EXPECT_EQ(rr.name.text(), query.qname);
    distinct.insert(rr.rdata);
  }
  EXPECT_EQ(distinct.size(), 4u);
}

TEST(DisposableZoneTest, RrPerAnswerClampedToPool) {
  DisposableZoneConfig config;
  config.apex = "t.vendor.com";
  config.rdata_pool = 2;
  config.rr_per_answer = 10;
  auto model = make_disposable(config);
  SyntheticAuthority authority;
  model.install(authority);
  Rng rng(6);
  const QuerySpec query = model.sample_query(rng);
  const auto answer =
      authority.resolve({DomainName(query.qname), query.qtype}, 0);
  EXPECT_EQ(answer.answers.size(), 2u);
}

TEST(PopularZoneTest, FixedHostSetWithZipfPopularity) {
  PopularZoneConfig config;
  config.apex = "popular.com";
  config.hostnames = 10;
  config.aaaa_fraction = 0.0;
  PopularZoneModel model(config);
  EXPECT_FALSE(model.disposable());
  Rng rng(7);
  std::map<std::string, int> counts;
  for (int i = 0; i < 5000; ++i) ++counts[model.sample_query(rng).qname];
  EXPECT_LE(counts.size(), 10u);
  // The bare apex is rank 0 and must dominate.
  EXPECT_GT(counts["popular.com"], counts["www.popular.com"]);
  for (const auto& [name, count] : counts) {
    EXPECT_TRUE(DomainName(name).is_within("popular.com")) << name;
  }
}

TEST(PopularZoneTest, AaaaFraction) {
  PopularZoneConfig config;
  config.apex = "popular.com";
  config.aaaa_fraction = 1.0;
  PopularZoneModel model(config);
  Rng rng(8);
  EXPECT_EQ(model.sample_query(rng).qtype, RRType::AAAA);
}

TEST(CdnZoneTest, ShardNames) {
  CdnZoneConfig config;
  config.apex = "g.akamai.net";
  config.shards = 100;
  CdnZoneModel model(config);
  EXPECT_FALSE(model.disposable());
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const QuerySpec query = model.sample_query(rng);
    const auto name = DomainName::parse(query.qname);
    ASSERT_TRUE(name);
    EXPECT_TRUE(name->is_within("g.akamai.net"));
    EXPECT_EQ(name->label(0).front(), 'e');
  }
}

TEST(OtherSitesTest, OwnSitesResolveOthersDoNot) {
  OtherSitesConfig config;
  config.sites = 500;
  OtherSitesModel model(config);
  SyntheticAuthority authority;
  model.install(authority);

  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    const QuerySpec query = model.sample_query(rng);
    const auto answer =
        authority.resolve({DomainName(query.qname), query.qtype}, 0);
    EXPECT_EQ(answer.rcode, RCode::NoError) << query.qname;
    EXPECT_FALSE(answer.disposable_zone);
  }
  // Junk under a covered TLD gets NXDOMAIN from the TLD handler.
  EXPECT_EQ(authority.resolve({DomainName("n0such5ite.com"), RRType::A}, 0)
                .rcode,
            RCode::NXDomain);
}

TEST(OtherSitesTest, SiteDomainsAreStable) {
  OtherSitesConfig config;
  config.sites = 100;
  const OtherSitesModel a(config);
  const OtherSitesModel b(config);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.site_domain(i), b.site_domain(i));
  }
}

TEST(NxdomainTest, NamesNeverResolve) {
  NxdomainModel model(NxdomainConfig{});
  OtherSitesConfig sites_config;
  sites_config.sites = 1000;
  OtherSitesModel sites(sites_config);
  SyntheticAuthority authority;
  sites.install(authority);
  model.install(authority);  // no-op

  Rng rng(11);
  int resolved = 0;
  for (int i = 0; i < 500; ++i) {
    const QuerySpec query = model.sample_query(rng);
    ASSERT_TRUE(DomainName::parse(query.qname)) << query.qname;
    if (authority.resolve({DomainName(query.qname), query.qtype}, 0).rcode ==
        RCode::NoError) {
      ++resolved;
    }
  }
  EXPECT_EQ(resolved, 0);
}

}  // namespace
}  // namespace dnsnoise
