#include "ml/lad_tree.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ml/eval.h"
#include "util/rng.h"

namespace dnsnoise {
namespace {

/// Two well-separated 2D Gaussian blobs.
Dataset blobs(std::uint64_t seed, std::size_t per_class = 100) {
  Rng rng(seed);
  Dataset data(2);
  for (std::size_t i = 0; i < per_class; ++i) {
    const double x0[2] = {rng.normal(-2.0, 0.5), rng.normal(-2.0, 0.5)};
    data.add(x0, 0);
    const double x1[2] = {rng.normal(2.0, 0.5), rng.normal(2.0, 0.5)};
    data.add(x1, 1);
  }
  return data;
}

/// Axis-aligned XOR: requires nested splits — a boosted-stump model cannot
/// express it, an alternating decision tree can.
Dataset xor_data(std::uint64_t seed, std::size_t per_quadrant = 60) {
  Rng rng(seed);
  Dataset data(2);
  for (std::size_t i = 0; i < per_quadrant; ++i) {
    for (const int sx : {-1, 1}) {
      for (const int sy : {-1, 1}) {
        const double x[2] = {sx * rng.uniform(0.5, 2.0),
                             sy * rng.uniform(0.5, 2.0)};
        data.add(x, sx * sy > 0 ? 1 : 0);
      }
    }
  }
  return data;
}

TEST(LadTreeTest, LearnsSeparableBlobs) {
  const Dataset data = blobs(1);
  LadTree model;
  model.train(data);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double p = model.predict_proba(data.features(i));
    if ((p >= 0.5) == (data.label(i) == 1)) ++correct;
  }
  EXPECT_GE(correct, data.size() * 99 / 100);
}

TEST(LadTreeTest, ProbabilitiesAreInUnitInterval) {
  const Dataset data = blobs(2);
  LadTree model;
  model.train(data);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const double x[2] = {rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const double p = model.predict_proba(x);
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
  }
}

TEST(LadTreeTest, SolvesXorUnlikeStumps) {
  const Dataset data = xor_data(4);
  LadTreeConfig config;
  config.iterations = 40;
  LadTree model(config);
  model.train(data);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double p = model.predict_proba(data.features(i));
    if ((p >= 0.5) == (data.label(i) == 1)) ++correct;
  }
  EXPECT_GE(correct, data.size() * 95 / 100);
  // XOR demands nested structure: at least one splitter must attach below
  // the root prediction node.
  bool has_nested = false;
  for (const auto& splitter : model.splitters()) {
    if (splitter.parent != 0) has_nested = true;
  }
  EXPECT_TRUE(has_nested);
}

TEST(LadTreeTest, MarginAndProbaAreConsistent) {
  const Dataset data = blobs(5);
  LadTree model;
  model.train(data);
  const auto x = data.features(0);
  const double margin = model.margin(x);
  const double p = model.predict_proba(x);
  EXPECT_NEAR(p, 1.0 / (1.0 + std::exp(-2.0 * margin)), 1e-12);
}

TEST(LadTreeTest, SkewedPriorsShiftRootPrediction) {
  Rng rng(6);
  Dataset data(1);
  for (int i = 0; i < 90; ++i) {
    const double x[1] = {rng.normal(0, 1)};
    data.add(x, 1);
  }
  for (int i = 0; i < 10; ++i) {
    const double x[1] = {rng.normal(0, 1)};
    data.add(x, 0);
  }
  LadTree model(LadTreeConfig{.iterations = 0});
  model.train(data);
  EXPECT_GT(model.root_prediction(), 0.0);
  EXPECT_GT(model.predict_proba(data.features(0)), 0.5);
}

TEST(LadTreeTest, ConstantFeaturesProduceNoSplit) {
  Dataset data(2);
  for (int i = 0; i < 20; ++i) {
    const double x[2] = {1.0, 2.0};
    data.add(x, i % 2);
  }
  LadTree model;
  model.train(data);
  EXPECT_TRUE(model.splitters().empty());
  EXPECT_NEAR(model.predict_proba(data.features(0)), 0.5, 0.05);
}

TEST(LadTreeTest, EmptyDatasetThrows) {
  LadTree model;
  EXPECT_THROW(model.train(Dataset(2)), std::invalid_argument);
}

TEST(LadTreeTest, DimensionMismatchThrows) {
  const Dataset data = blobs(7);
  LadTree model;
  model.train(data);
  const double bad[3] = {0, 0, 0};
  EXPECT_THROW(model.predict_proba(bad), std::invalid_argument);
}

TEST(LadTreeTest, AucNearOneOnSeparableData) {
  const Dataset data = blobs(8);
  const auto scores = cross_val_scores(
      data, [] { return std::make_unique<LadTree>(); }, 10, 1);
  std::vector<int> labels;
  for (std::size_t i = 0; i < data.size(); ++i) {
    labels.push_back(data.label(i));
  }
  const auto curve = roc_curve(scores, labels);
  EXPECT_GT(auc(curve), 0.99);
}

class LadTreeIterationsTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LadTreeIterationsTest, MoreIterationsNeverHurtTrainingAccuracy) {
  const Dataset data = xor_data(9, 30);
  LadTreeConfig config;
  config.iterations = GetParam();
  LadTree model(config);
  model.train(data);
  EXPECT_LE(model.splitters().size(), GetParam());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double p = model.predict_proba(data.features(i));
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Iterations, LadTreeIterationsTest,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64));

}  // namespace
}  // namespace dnsnoise
