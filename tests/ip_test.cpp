#include "dns/ip.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace dnsnoise {
namespace {

TEST(Ipv4Test, ParseAndFormat) {
  const auto ip = parse_ipv4("192.0.2.1");
  ASSERT_TRUE(ip);
  EXPECT_EQ(format_ipv4(*ip), "192.0.2.1");
  EXPECT_EQ(ip->octets()[0], 192);
  EXPECT_EQ(ip->octets()[3], 1);
}

TEST(Ipv4Test, Extremes) {
  EXPECT_EQ(format_ipv4(*parse_ipv4("0.0.0.0")), "0.0.0.0");
  EXPECT_EQ(format_ipv4(*parse_ipv4("255.255.255.255")), "255.255.255.255");
}

TEST(Ipv4Test, FromOctets) {
  const Ipv4 ip = Ipv4::from_octets(10, 20, 30, 40);
  EXPECT_EQ(format_ipv4(ip), "10.20.30.40");
  EXPECT_EQ(ip.value, 0x0a141e28u);
}

class BadIpv4Test : public ::testing::TestWithParam<const char*> {};

TEST_P(BadIpv4Test, ParseRejects) {
  EXPECT_FALSE(parse_ipv4(GetParam())) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Malformed, BadIpv4Test,
                         ::testing::Values("", "1.2.3", "1.2.3.4.5", "256.1.1.1",
                                           "1.2.3.", ".1.2.3", "a.b.c.d",
                                           "1..2.3", "01234.1.1.1",
                                           "1.2.3.4 "));

TEST(Ipv6Test, ParseFullForm) {
  const auto ip = parse_ipv6("2001:0db8:0000:0000:0000:0000:0000:0001");
  ASSERT_TRUE(ip);
  EXPECT_EQ(format_ipv6(*ip), "2001:db8::1");
}

TEST(Ipv6Test, ParseCompressed) {
  const auto ip = parse_ipv6("2001:db8::1");
  ASSERT_TRUE(ip);
  EXPECT_EQ(ip->bytes[0], 0x20);
  EXPECT_EQ(ip->bytes[1], 0x01);
  EXPECT_EQ(ip->bytes[15], 0x01);
}

TEST(Ipv6Test, AllZeros) {
  const auto ip = parse_ipv6("::");
  ASSERT_TRUE(ip);
  for (const auto b : ip->bytes) EXPECT_EQ(b, 0);
  EXPECT_EQ(format_ipv6(*ip), "::");
}

TEST(Ipv6Test, LeadingAndTrailingGap) {
  EXPECT_TRUE(parse_ipv6("::1"));
  EXPECT_TRUE(parse_ipv6("fe80::"));
  EXPECT_EQ(format_ipv6(*parse_ipv6("::1")), "::1");
  EXPECT_EQ(format_ipv6(*parse_ipv6("fe80::")), "fe80::");
}

class BadIpv6Test : public ::testing::TestWithParam<const char*> {};

TEST_P(BadIpv6Test, ParseRejects) {
  EXPECT_FALSE(parse_ipv6(GetParam())) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Malformed, BadIpv6Test,
                         ::testing::Values("", ":::", "1:2:3:4:5:6:7",
                                           "1:2:3:4:5:6:7:8:9", "g::1",
                                           "1::2::3", "12345::1",
                                           "1:2:3:4:5:6:7:8:"));

class Ipv6RoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Ipv6RoundTripTest, FormatParseIsIdentity) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    Ipv6 ip;
    for (auto& b : ip.bytes) b = static_cast<std::uint8_t>(rng.below(256));
    // Occasionally zero a run to exercise '::' compression.
    if (rng.chance(0.5)) {
      const std::size_t start = rng.below(12);
      const std::size_t len = 2 + rng.below(8);
      for (std::size_t i = start; i < std::min<std::size_t>(start + len, 16);
           ++i) {
        ip.bytes[i] = 0;
      }
    }
    const std::string text = format_ipv6(ip);
    const auto parsed = parse_ipv6(text);
    ASSERT_TRUE(parsed) << text;
    EXPECT_EQ(*parsed, ip) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Ipv6RoundTripTest,
                         ::testing::Values(1, 7, 42, 1234));

}  // namespace
}  // namespace dnsnoise
