// Tests for the Section VI-A mitigation mechanism (low-priority caching of
// disposable entries) and for the cross-date model-transfer protocol (one
// trained classifier applied to other dates, the paper's deployment mode).
#include <gtest/gtest.h>

#include "miner/pipeline.h"
#include "ml/lad_tree.h"
#include "resolver/dns_cache.h"

namespace dnsnoise {
namespace {

// --------------------------------------------------------------------------
// LruCache::put_cold

TEST(PutColdTest, ColdEntriesEvictFirst) {
  LruCache<int, int> cache(3);
  cache.put(1, 1);
  cache.put_cold(2, 2);  // cold: first eviction candidate
  cache.put(3, 3);
  cache.put(4, 4);       // evicts the cold entry, not 1
  EXPECT_EQ(cache.get(2), nullptr);
  EXPECT_NE(cache.get(1), nullptr);
  EXPECT_NE(cache.get(3), nullptr);
}

TEST(PutColdTest, GetPromotesColdEntry) {
  LruCache<int, int> cache(3);
  cache.put_cold(1, 1);
  cache.put(2, 2);
  cache.put(3, 3);
  EXPECT_NE(cache.get(1), nullptr);  // promote
  cache.put(4, 4);                   // now evicts 2 (the real LRU)
  EXPECT_NE(cache.get(1), nullptr);
  EXPECT_EQ(cache.get(2), nullptr);
}

TEST(PutColdTest, UpdateDemotesToCold) {
  LruCache<int, int> cache(2);
  cache.put(1, 1);
  cache.put(2, 2);
  cache.put_cold(1, 9);  // demote + replace value
  EXPECT_EQ(*cache.peek(1), 9);
  cache.put(3, 3);  // evicts 1, now the coldest
  EXPECT_EQ(cache.peek(1), nullptr);
  EXPECT_NE(cache.peek(2), nullptr);
}

TEST(PutColdTest, RespectsCapacityAndListener) {
  LruCache<int, int> cache(2);
  std::vector<int> victims;
  cache.set_eviction_listener(
      [&victims](const int& key, const int&) { victims.push_back(key); });
  cache.put_cold(1, 1);
  cache.put_cold(2, 2);
  cache.put_cold(3, 3);
  EXPECT_EQ(cache.size(), 2u);
  ASSERT_EQ(victims.size(), 1u);
  // put_cold appends at the back; the previous back (2) is the victim.
  EXPECT_EQ(victims[0], 2);
}

// --------------------------------------------------------------------------
// DnsCache low-priority policy

std::vector<ResourceRecord> one_answer(const char* name) {
  return {{DomainName(name), RRType::A, 1000, "192.0.2.7"}};
}

TEST(LowPriorityCacheTest, DisposableEntriesNeverDisplaceUsefulOnes) {
  DnsCacheConfig config;
  config.capacity = 2;
  config.low_priority_disposable = true;
  DnsCache cache(config);
  cache.insert_positive({"useful.com", RRType::A}, one_answer("useful.com"),
                        0);
  // A stream of disposable inserts churns only the cold slot.
  for (int i = 0; i < 10; ++i) {
    const std::string name = "d" + std::to_string(i) + ".zone.com";
    cache.insert_positive({name, RRType::A}, one_answer(name.c_str()), 0,
                          /*disposable_hint=*/true);
  }
  EXPECT_NE(cache.lookup({"useful.com", RRType::A}, 1), nullptr);
  EXPECT_EQ(cache.stats().premature_nondisposable_evictions, 0u);
  EXPECT_EQ(cache.stats().evictions, 9u);
}

TEST(LowPriorityCacheTest, PolicyOffDisplacesUsefulEntries) {
  DnsCacheConfig config;
  config.capacity = 2;
  DnsCache cache(config);
  cache.insert_positive({"useful.com", RRType::A}, one_answer("useful.com"),
                        0);
  for (int i = 0; i < 10; ++i) {
    const std::string name = "d" + std::to_string(i) + ".zone.com";
    cache.insert_positive({name, RRType::A}, one_answer(name.c_str()), 0,
                          /*disposable_hint=*/true);
  }
  EXPECT_EQ(cache.lookup({"useful.com", RRType::A}, 1), nullptr);
  EXPECT_GE(cache.stats().premature_nondisposable_evictions, 1u);
}

// --------------------------------------------------------------------------
// Cross-date model transfer (the paper's one-model campaign)

TEST(ModelTransferTest, NovemberModelMinesOtherDatesWithHighPrecision) {
  PipelineOptions train_options;
  train_options.scale.queries_per_day = 90'000;
  train_options.scale.client_count = 4'000;
  train_options.scale.population_scale = 0.5;
  train_options.labeler.min_group_size = 8;

  Scenario november(ScenarioDate::kNov14, train_options.scale);
  DayCapture capture;
  simulate_day(november, capture, train_options,
               scenario_day_index(ScenarioDate::kNov14));
  LadTree model;
  model.train(to_dataset(label_zones(capture.tree(), capture.chr(), november,
                                     train_options.labeler)));

  for (const ScenarioDate date : {ScenarioDate::kFeb01, ScenarioDate::kDec30}) {
    PipelineOptions apply_options = train_options;
    apply_options.pretrained = &model;
    const MiningDayResult result = run_mining_day(date, apply_options);
    EXPECT_GT(result.evaluation.findings, 20u) << scenario_date_name(date);
    EXPECT_GT(result.evaluation.finding_precision(), 0.9)
        << scenario_date_name(date);
  }
}

TEST(ModelTransferTest, SerializedModelMinesIdentically) {
  PipelineOptions options;
  options.scale.queries_per_day = 60'000;
  options.scale.client_count = 3'000;
  options.scale.population_scale = 0.4;
  options.labeler.min_group_size = 8;

  Scenario scenario(ScenarioDate::kNov14, options.scale);
  DayCapture capture;
  simulate_day(scenario, capture, options,
               scenario_day_index(ScenarioDate::kNov14));
  LadTree model;
  model.train(to_dataset(label_zones(capture.tree(), capture.chr(), scenario,
                                     options.labeler)));
  const auto restored = LadTree::deserialize(model.serialize());
  ASSERT_TRUE(restored);

  // Mining with the restored model yields the exact same findings.
  DayCapture capture2;
  Scenario scenario2(ScenarioDate::kNov14, options.scale);
  simulate_day(scenario2, capture2, options,
               scenario_day_index(ScenarioDate::kNov14));
  const DisposableZoneMiner original_miner(model);
  const DisposableZoneMiner restored_miner(*restored);
  auto findings_a = original_miner.mine(capture.tree(), capture.chr());
  auto findings_b = restored_miner.mine(capture2.tree(), capture2.chr());
  ASSERT_EQ(findings_a.size(), findings_b.size());
  for (std::size_t i = 0; i < findings_a.size(); ++i) {
    EXPECT_EQ(findings_a[i].zone, findings_b[i].zone);
    EXPECT_EQ(findings_a[i].depth, findings_b[i].depth);
    EXPECT_DOUBLE_EQ(findings_a[i].confidence, findings_b[i].confidence);
  }
}

}  // namespace
}  // namespace dnsnoise
