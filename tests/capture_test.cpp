#include "netio/capture.h"

#include <gtest/gtest.h>

#include "dns/wire.h"

namespace dnsnoise {
namespace {

const Ipv4 kResolver1 = Ipv4::from_octets(10, 0, 0, 1);
const Ipv4 kResolver2 = Ipv4::from_octets(10, 0, 0, 2);
const Ipv4 kClient = Ipv4::from_octets(192, 168, 7, 7);
const Ipv4 kAuthority = Ipv4::from_octets(203, 0, 113, 9);

DnsMessage sample_answer(const char* qname) {
  DnsMessage query = DnsMessage::make_query(1, DomainName(qname), RRType::A);
  std::vector<ResourceRecord> answers;
  answers.push_back({DomainName(qname), RRType::A, 60, "198.51.100.1"});
  return DnsMessage::make_response(query, RCode::NoError, std::move(answers));
}

CaptureDecoder make_decoder() {
  return CaptureDecoder({kResolver1, kResolver2});
}

TEST(CaptureTest, BelowDirection) {
  auto decoder = make_decoder();
  const auto frame = build_dns_frame(kResolver1, 53, kClient, 40000,
                                     sample_answer("www.example.com"));
  const auto event = decoder.decode(1234, frame);
  ASSERT_TRUE(event);
  EXPECT_EQ(event->direction, TapDirection::kBelow);
  EXPECT_EQ(event->ts, 1234);
  EXPECT_NE(event->client_id, 0u);
  ASSERT_EQ(event->message.answers.size(), 1u);
  EXPECT_EQ(event->message.answers[0].name.text(), "www.example.com");
}

TEST(CaptureTest, AboveDirection) {
  auto decoder = make_decoder();
  const auto frame = build_dns_frame(kAuthority, 53, kResolver2, 33333,
                                     sample_answer("www.example.com"));
  const auto event = decoder.decode(99, frame);
  ASSERT_TRUE(event);
  EXPECT_EQ(event->direction, TapDirection::kAbove);
  EXPECT_EQ(event->client_id, 0u);
}

TEST(CaptureTest, ClientIdsAreStableAndAnonymized) {
  auto decoder = make_decoder();
  const auto frame = build_dns_frame(kResolver1, 53, kClient, 40000,
                                     sample_answer("a.example.com"));
  const auto e1 = decoder.decode(1, frame);
  const auto e2 = decoder.decode(2, frame);
  ASSERT_TRUE(e1);
  ASSERT_TRUE(e2);
  EXPECT_EQ(e1->client_id, e2->client_id);
  // The raw client address must not be recoverable from the ID directly.
  EXPECT_NE(e1->client_id, static_cast<std::uint64_t>(kClient.value));

  // A different salt yields different IDs.
  CaptureDecoder other({kResolver1, kResolver2}, /*anonymization_salt=*/999);
  const auto e3 = other.decode(1, frame);
  ASSERT_TRUE(e3);
  EXPECT_NE(e3->client_id, e1->client_id);
}

TEST(CaptureTest, DropsQueries) {
  auto decoder = make_decoder();
  const DnsMessage query =
      DnsMessage::make_query(5, DomainName("q.example.com"), RRType::A);
  const auto frame = build_dns_frame(kResolver1, 53, kClient, 40000, query);
  EXPECT_FALSE(decoder.decode(1, frame));
  EXPECT_EQ(decoder.dropped(), 1u);
}

TEST(CaptureTest, DropsWrongPort) {
  auto decoder = make_decoder();
  const auto frame = build_dns_frame(kResolver1, 8080, kClient, 40000,
                                     sample_answer("x.example.com"));
  EXPECT_FALSE(decoder.decode(1, frame));
}

TEST(CaptureTest, DropsUnrelatedHosts) {
  auto decoder = make_decoder();
  const auto frame = build_dns_frame(kAuthority, 53, kClient, 40000,
                                     sample_answer("x.example.com"));
  EXPECT_FALSE(decoder.decode(1, frame));
}

TEST(CaptureTest, DropsGarbagePayload) {
  auto decoder = make_decoder();
  const std::vector<std::uint8_t> junk = {1, 2, 3};
  const auto frame = build_udp4_frame(kResolver1, 53, kClient, 40000, junk);
  EXPECT_FALSE(decoder.decode(1, frame));
  EXPECT_EQ(decoder.dropped(), 1u);
  EXPECT_EQ(decoder.accepted(), 0u);
}

TEST(CaptureTest, PcapEndToEnd) {
  // Write a pcap with a mixture of frames; decode_pcap must yield exactly
  // the DNS responses touching the cluster.
  PcapWriter writer;
  writer.write(10, 0, build_dns_frame(kResolver1, 53, kClient, 40000,
                                      sample_answer("one.example.com")));
  writer.write(11, 0, build_dns_frame(kAuthority, 53, kResolver1, 5353,
                                      sample_answer("two.example.com")));
  // Noise: a query and an unrelated response.
  writer.write(12, 0,
               build_dns_frame(kResolver1, 53, kClient, 40000,
                               DnsMessage::make_query(
                                   9, DomainName("q.example.com"), RRType::A)));
  writer.write(13, 0, build_dns_frame(kAuthority, 53, kClient, 40000,
                                      sample_answer("three.example.com")));

  auto decoder = make_decoder();
  std::vector<DecodedResponse> events;
  const std::size_t produced = decoder.decode_pcap(
      writer.bytes(), [&events](const DecodedResponse& e) { events.push_back(e); });
  ASSERT_EQ(produced, 2u);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].direction, TapDirection::kBelow);
  EXPECT_EQ(events[0].ts, 10);
  EXPECT_EQ(events[1].direction, TapDirection::kAbove);
  EXPECT_EQ(events[1].message.answers[0].name.text(), "two.example.com");
  EXPECT_EQ(decoder.accepted(), 2u);
  EXPECT_EQ(decoder.dropped(), 2u);
}

}  // namespace
}  // namespace dnsnoise
