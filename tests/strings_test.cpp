#include "util/strings.h"

#include <gtest/gtest.h>

#include "util/table.h"

namespace dnsnoise {
namespace {

TEST(StringsTest, SplitBasic) {
  const auto parts = split("a.b.c", '.');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, SplitPreservesEmptyFields) {
  const auto parts = split("a..b", '.');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(split("", '.').size(), 1u);
  EXPECT_EQ(split(".", '.').size(), 2u);
}

TEST(StringsTest, JoinRoundTrip) {
  const std::string input = "x.y.z";
  EXPECT_EQ(join(split(input, '.'), '.'), input);
}

TEST(StringsTest, JoinStrings) {
  const std::vector<std::string> parts = {"one", "two"};
  EXPECT_EQ(join(parts, '-'), "one-two");
  EXPECT_EQ(join(std::vector<std::string>{}, '-'), "");
}

TEST(StringsTest, ToLower) {
  EXPECT_EQ(to_lower("WwW.ExAmPlE.CoM"), "www.example.com");
  EXPECT_EQ(to_lower(""), "");
}

TEST(StringsTest, EndsStartsWith) {
  EXPECT_TRUE(ends_with("foo.example.com", ".example.com"));
  EXPECT_FALSE(ends_with("com", ".example.com"));
  EXPECT_TRUE(starts_with("*.ck", "*."));
  EXPECT_FALSE(starts_with("a", "ab"));
}

TEST(StringsTest, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(14488), "14,488");
  EXPECT_EQ(with_commas(129674213), "129,674,213");
}

TEST(StringsTest, FixedAndPercent) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(percent(0.231), "23.1%");
  EXPECT_EQ(percent(0.97, 0), "97%");
}

TEST(TableTest, RendersAlignedColumns) {
  TextTable table({"zone", "count"});
  table.add_row({"a.example.com", "5"});
  table.add_row({"b.co", "12345"});
  const std::string out = table.render();
  EXPECT_NE(out.find("zone"), std::string::npos);
  EXPECT_NE(out.find("a.example.com"), std::string::npos);
  EXPECT_NE(out.find("12345"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableTest, ShortRowsArePadded) {
  TextTable table({"a", "b", "c"});
  table.add_row({"only"});
  EXPECT_EQ(table.rows(), 1u);
  EXPECT_NO_THROW(table.render());
}

TEST(TableTest, AsciiBars) {
  const std::vector<std::pair<std::string, double>> series = {
      {"feb", 1.0}, {"dec", 2.0}};
  const std::string out = ascii_bars(series, 10);
  EXPECT_NE(out.find("feb"), std::string::npos);
  EXPECT_NE(out.find("##########"), std::string::npos);  // max-length bar
}

TEST(TableTest, AsciiBarsAllZero) {
  const std::vector<std::pair<std::string, double>> series = {{"x", 0.0}};
  EXPECT_NO_THROW(ascii_bars(series));
}

TEST(TableTest, XySeries) {
  const std::vector<std::pair<double, double>> series = {{0.0, 1.0},
                                                         {0.5, 2.0}};
  const std::string out = xy_series(series, "x", "y");
  EXPECT_NE(out.find("x\ty"), std::string::npos);
  EXPECT_NE(out.find("0.500000\t2.000000"), std::string::npos);
}

}  // namespace
}  // namespace dnsnoise
