// Unit tests for the observability subsystem: metric primitives, registry
// semantics, snapshot ordering, and the stability contract of the JSON
// exporter (same registry state => byte-identical JSON).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/json_snapshot.h"
#include "obs/metrics.h"

namespace dnsnoise::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(Counter, ConcurrentAddsAreLossless) {
  Counter counter;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.add();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(Gauge, SetAddSetMax) {
  Gauge gauge;
  gauge.set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.add(0.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 3.0);
  gauge.set_max(1.0);  // lower: no effect
  EXPECT_DOUBLE_EQ(gauge.value(), 3.0);
  gauge.set_max(7.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 7.0);
}

TEST(Timer, TracksCountTotalMinMax) {
  Timer timer;
  EXPECT_EQ(timer.count(), 0u);
  EXPECT_EQ(timer.min_ns(), 0u);  // empty timer reports 0, not the sentinel
  timer.record_ns(300);
  timer.record_ns(100);
  timer.record_ns(200);
  EXPECT_EQ(timer.count(), 3u);
  EXPECT_EQ(timer.total_ns(), 600u);
  EXPECT_EQ(timer.min_ns(), 100u);
  EXPECT_EQ(timer.max_ns(), 300u);
}

TEST(StageTimer, RecordsOneSpanAndIsIdempotent) {
  Timer timer;
  {
    StageTimer span(&timer);
    span.stop();
    span.stop();  // second stop must not double-record
  }
  EXPECT_EQ(timer.count(), 1u);
}

TEST(StageTimer, NullTimerIsANoOp) {
  StageTimer span(nullptr);
  EXPECT_DOUBLE_EQ(span.elapsed_seconds(), 0.0);
  span.stop();  // must not crash
}

TEST(Histogram, RecordsThroughLogHistogram) {
  Histogram hist(1000.0);
  hist.record(0.0);
  hist.record(10.0, 3);
  const LogHistogram copy = hist.copy();
  EXPECT_EQ(copy.zero_count(), 1u);
  EXPECT_EQ(copy.total(), 4u);
}

TEST(MetricsRegistry, ReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& a = registry.counter("stage.events");
  Counter& b = registry.counter("stage.events");
  EXPECT_EQ(&a, &b);
  a.add(5);
  EXPECT_EQ(registry.counter("stage.events").value(), 5u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry registry;
  registry.counter("stage.metric");
  EXPECT_THROW(registry.gauge("stage.metric"), std::logic_error);
  EXPECT_THROW(registry.timer("stage.metric"), std::logic_error);
  EXPECT_THROW(registry.histogram("stage.metric"), std::logic_error);
}

TEST(MetricsRegistry, ConcurrentRegistrationIsSafe) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 100; ++i) {
        registry.counter("shared.counter").add();
        registry.counter("c" + std::to_string(i)).add();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(registry.counter("shared.counter").value(), 400u);
  EXPECT_EQ(registry.size(), 101u);
}

TEST(MetricsSnapshot, SortedByNameAcrossKinds) {
  MetricsRegistry registry;
  registry.gauge("b.gauge").set(1.0);
  registry.counter("a.counter").add(2);
  registry.timer("c.timer").record_ns(5);
  const MetricsSnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.samples.size(), 3u);
  EXPECT_EQ(snapshot.samples[0].name, "a.counter");
  EXPECT_EQ(snapshot.samples[1].name, "b.gauge");
  EXPECT_EQ(snapshot.samples[2].name, "c.timer");
  ASSERT_NE(snapshot.find("b.gauge"), nullptr);
  EXPECT_DOUBLE_EQ(snapshot.find("b.gauge")->value, 1.0);
  EXPECT_EQ(snapshot.find("missing"), nullptr);
}

TEST(JsonSnapshot, EmptyRegistryIsValidAndStable) {
  MetricsRegistry registry;
  const std::string json = to_json(registry.snapshot());
  EXPECT_NE(json.find("\"schema\": \"dnsnoise-metrics-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"counters\": {}"), std::string::npos);
  EXPECT_EQ(json, to_json(registry.snapshot()));
}

TEST(JsonSnapshot, RoundTripIsByteIdentical) {
  // The satellite stability guarantee: serializing the same registry state
  // twice — and serializing a semantically identical second registry —
  // yields byte-identical JSON.
  const auto populate = [](MetricsRegistry& registry) {
    registry.counter("cluster.server0.cache_hits").add(10);
    registry.counter("cluster.server1.cache_hits").add(20);
    registry.gauge("engine.shard0.wall_seconds").set(0.125);
    registry.timer("miner.features").record_ns(1'000'000);
    registry.histogram("cluster.tap_batch_size", 1e6).record(256.0, 4);
  };
  MetricsRegistry one;
  MetricsRegistry two;
  populate(one);
  populate(two);
  const std::string json_one = to_json(one.snapshot());
  EXPECT_EQ(json_one, to_json(one.snapshot()));
  EXPECT_EQ(json_one, to_json(two.snapshot()));
}

TEST(JsonSnapshot, SectionsCarryTheRightMetrics) {
  MetricsRegistry registry;
  registry.counter("stage.events").add(7);
  registry.gauge("stage.rate").set(1.5);
  registry.timer("stage.span").record_ns(2'000'000'000);
  registry.histogram("stage.sizes", 1e6).record(100.0);
  const std::string json = to_json(registry.snapshot());
  EXPECT_NE(json.find("\"stage.events\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"stage.rate\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"total_seconds\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"bins\": [{"), std::string::npos);
}

TEST(JsonSnapshot, MetaPairsAreEmbeddedSorted) {
  MetricsRegistry registry;
  registry.gauge("bench.items_per_sec").set(12.5);
  const std::string json =
      to_json(registry.snapshot(), {{"bench", "micro"}, {"arch", "x86"}});
  const auto arch = json.find("\"arch\": \"x86\"");
  const auto bench = json.find("\"bench\": \"micro\"");
  ASSERT_NE(arch, std::string::npos);
  ASSERT_NE(bench, std::string::npos);
  EXPECT_LT(arch, bench);  // meta map iterates sorted
}

TEST(JsonSnapshot, EscapesControlAndQuoteCharacters) {
  MetricsRegistry registry;
  registry.counter("weird\"name\\with\nnoise").add(1);
  const std::string json = to_json(registry.snapshot());
  EXPECT_NE(json.find("weird\\\"name\\\\with\\nnoise"), std::string::npos);
}

TEST(JsonSnapshot, FormatDoubleIsShortestRoundTrip) {
  EXPECT_EQ(format_double(1.5), "1.5");
  EXPECT_EQ(format_double(0.1), "0.1");
  EXPECT_EQ(format_double(0.0), "0");
}

TEST(JsonSnapshot, FormatDoubleHandlesNonFiniteValues) {
  // JSON has no literal for NaN/Inf; NaN becomes null, infinities clamp
  // to the nearest representable finite double so magnitude survives.
  EXPECT_EQ(format_double(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()),
            format_double(std::numeric_limits<double>::max()));
  EXPECT_EQ(format_double(-std::numeric_limits<double>::infinity()),
            format_double(std::numeric_limits<double>::lowest()));
  // The clamped values must still be valid JSON numbers that round-trip.
  const std::string clamped =
      format_double(std::numeric_limits<double>::infinity());
  EXPECT_EQ(std::stod(clamped), std::numeric_limits<double>::max());
  EXPECT_EQ(clamped.find("inf"), std::string::npos);
  EXPECT_EQ(clamped.find("nan"), std::string::npos);
}

TEST(JsonSnapshot, HistogramJsonCarriesPercentiles) {
  MetricsRegistry registry;
  Histogram& histo = registry.histogram("resolver.upstream_us");
  for (int i = 0; i < 100; ++i) histo.record(100.0);
  const std::string json = to_json(registry.snapshot());
  EXPECT_NE(json.find("\"p50\": "), std::string::npos);
  EXPECT_NE(json.find("\"p90\": "), std::string::npos);
  EXPECT_NE(json.find("\"p99\": "), std::string::npos);
  EXPECT_NE(json.find("\"p999\": "), std::string::npos);
}

TEST(JsonSnapshot, EstimateQuantileInterpolatesWithinBuckets) {
  MetricsRegistry registry;
  Histogram& histo = registry.histogram("h");
  for (int i = 0; i < 1000; ++i) histo.record(100.0);
  const MetricsSnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.samples.size(), 1u);
  const MetricSample& sample = snapshot.samples[0];
  // All mass sits in the log-bucket covering 100; every quantile must
  // land inside that bucket's [lo, hi) bounds.
  const HistogramPercentiles p = estimate_percentiles(sample);
  for (const double q : {p.p50, p.p90, p.p99, p.p999}) {
    EXPECT_GT(q, 0.0);
    EXPECT_LE(q, 256.0);  // log2 bucket containing 100 ends at 128
    EXPECT_GE(q, 64.0);
  }
  // Percentiles are monotone in q.
  EXPECT_LE(p.p50, p.p90);
  EXPECT_LE(p.p90, p.p99);
  EXPECT_LE(p.p99, p.p999);
}

TEST(JsonSnapshot, EstimateQuantileHandlesUnderflowAndEmpty) {
  MetricsRegistry registry;
  Histogram& empty = registry.histogram("empty");
  (void)empty;
  Histogram& sub = registry.histogram("sub");
  sub.record(0.25);  // below the first bucket boundary -> zero_count
  const MetricsSnapshot snapshot = registry.snapshot();
  for (const MetricSample& sample : snapshot.samples) {
    if (sample.name == "empty") {
      EXPECT_EQ(estimate_quantile(sample, 0.5), 0.0);
    } else if (sample.name == "sub") {
      // Underflow bin reports 0 (values indistinguishable below 1).
      EXPECT_EQ(estimate_quantile(sample, 0.5), 0.0);
    }
  }
}

TEST(JsonSnapshot, WriteJsonFileRoundTrips) {
  MetricsRegistry registry;
  registry.counter("a").add(1);
  const std::string json = to_json(registry.snapshot());
  const std::string path =
      testing::TempDir() + "/dnsnoise_obs_test_snapshot.json";
  ASSERT_TRUE(write_json_file(path, json));
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::string read_back(json.size() + 16, '\0');
  const std::size_t n = std::fread(read_back.data(), 1, read_back.size(), file);
  std::fclose(file);
  read_back.resize(n);
  EXPECT_EQ(read_back, json);
  std::remove(path.c_str());
}

TEST(JsonSnapshot, WriteJsonFileFailsOnBadPath) {
  EXPECT_FALSE(write_json_file("/nonexistent-dir/x/y.json", "{}\n"));
}

}  // namespace
}  // namespace dnsnoise::obs
