#include "workload/traffic_gen.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

namespace dnsnoise {
namespace {

/// Minimal test tenant: fixed name, tracks how often it was sampled.
class CountingModel final : public ZoneModel {
 public:
  explicit CountingModel(std::string name) : name_(std::move(name)) {}
  const std::string& name() const noexcept override { return name_; }
  bool disposable() const noexcept override { return false; }
  QuerySpec sample_query(Rng&) override {
    ++samples_;
    return {"host." + name_, RRType::A};
  }
  void install(SyntheticAuthority&) const override {}
  std::uint64_t samples() const noexcept { return samples_; }

 private:
  std::string name_;
  std::uint64_t samples_ = 0;
};

TrafficConfig small_config() {
  TrafficConfig config;
  config.queries_per_day = 24'000;
  config.client_count = 100;
  config.seed = 7;
  return config;
}

TEST(TrafficGenTest, TimestampsAreOrderedAndWithinDay) {
  TrafficGenerator gen(small_config());
  gen.add_model(std::make_shared<CountingModel>("a.com"), 1.0);
  SimTime last = -1;
  std::uint64_t count = 0;
  gen.run_day(3, [&](SimTime ts, std::uint64_t, const QuerySpec&) {
    EXPECT_GE(ts, last);
    EXPECT_GE(ts, 3 * kSecondsPerDay);
    EXPECT_LT(ts, 4 * kSecondsPerDay);
    last = ts;
    ++count;
  });
  EXPECT_NEAR(static_cast<double>(count), 24'000.0, 24.0);
}

TEST(TrafficGenTest, WeightsControlMix) {
  TrafficGenerator gen(small_config());
  auto heavy = std::make_shared<CountingModel>("heavy.com");
  auto light = std::make_shared<CountingModel>("light.com");
  gen.add_model(heavy, 9.0);
  gen.add_model(light, 1.0);
  gen.run_day(0, [](SimTime, std::uint64_t, const QuerySpec&) {});
  const double total =
      static_cast<double>(heavy->samples() + light->samples());
  EXPECT_NEAR(static_cast<double>(heavy->samples()) / total, 0.9, 0.02);
}

TEST(TrafficGenTest, DiurnalShapeShows) {
  TrafficConfig config = small_config();
  config.queries_per_day = 100'000;
  TrafficGenerator gen(config);
  gen.add_model(std::make_shared<CountingModel>("a.com"), 1.0);
  std::map<int, std::uint64_t> per_hour;
  gen.run_day(0, [&per_hour](SimTime ts, std::uint64_t, const QuerySpec&) {
    ++per_hour[hour_of_day(ts)];
  });
  // Default profile: 8pm is the peak, 4am the trough.
  EXPECT_GT(per_hour[20], per_hour[4] * 3);
}

TEST(TrafficGenTest, FlatProfileIsEven) {
  TrafficConfig config = small_config();
  config.diurnal = DiurnalProfile::flat();
  TrafficGenerator gen(config);
  gen.add_model(std::make_shared<CountingModel>("a.com"), 1.0);
  std::map<int, std::uint64_t> per_hour;
  gen.run_day(0, [&per_hour](SimTime ts, std::uint64_t, const QuerySpec&) {
    ++per_hour[hour_of_day(ts)];
  });
  for (const auto& [hour, count] : per_hour) {
    EXPECT_EQ(count, 1000u) << "hour " << hour;
  }
}

TEST(TrafficGenTest, DeterministicForSameSeed) {
  std::vector<std::string> run1;
  std::vector<std::string> run2;
  for (auto* sink : {&run1, &run2}) {
    TrafficGenerator gen(small_config());
    gen.add_model(std::make_shared<CountingModel>("a.com"), 1.0);
    gen.add_model(std::make_shared<CountingModel>("b.com"), 1.0);
    gen.run_day(0, [sink](SimTime, std::uint64_t, const QuerySpec& q) {
      if (sink->size() < 500) sink->push_back(q.qname);
    });
  }
  EXPECT_EQ(run1, run2);
}

TEST(TrafficGenTest, ClientIdsAreStableAndNonZero) {
  const TrafficGenerator gen(small_config());
  EXPECT_NE(gen.client_id_for_rank(0), 0u);
  EXPECT_EQ(gen.client_id_for_rank(5), gen.client_id_for_rank(5));
  EXPECT_NE(gen.client_id_for_rank(5), gen.client_id_for_rank(6));
}

TEST(TrafficGenTest, ClientActivityIsSkewed) {
  TrafficGenerator gen(small_config());
  gen.add_model(std::make_shared<CountingModel>("a.com"), 1.0);
  std::map<std::uint64_t, std::uint64_t> per_client;
  gen.run_day(0, [&per_client](SimTime, std::uint64_t client,
                               const QuerySpec&) { ++per_client[client]; });
  std::uint64_t max_count = 0;
  for (const auto& [client, count] : per_client) {
    max_count = std::max(max_count, count);
  }
  const double mean = 24'000.0 / static_cast<double>(per_client.size());
  EXPECT_GT(static_cast<double>(max_count), mean * 3);
}

TEST(TrafficGenTest, ErrorsOnBadUsage) {
  TrafficGenerator gen(small_config());
  EXPECT_THROW(gen.run_day(0, [](SimTime, std::uint64_t, const QuerySpec&) {}),
               std::logic_error);
  EXPECT_THROW(gen.add_model(nullptr, 1.0), std::invalid_argument);
  EXPECT_THROW(gen.add_model(std::make_shared<CountingModel>("x"), 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace dnsnoise
