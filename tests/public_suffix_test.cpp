#include "dns/public_suffix.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dnsnoise {
namespace {

TEST(PublicSuffixTest, SimpleGtld) {
  const auto& psl = PublicSuffixList::builtin();
  EXPECT_EQ(psl.effective_tld(DomainName("www.example.com")).text(), "com");
  EXPECT_EQ(psl.registrable_domain(DomainName("www.example.com")).text(),
            "example.com");
}

TEST(PublicSuffixTest, MultiLabelSuffix) {
  const auto& psl = PublicSuffixList::builtin();
  // Paper III-B: com.cn and co.uk are effective TLDs.
  EXPECT_EQ(psl.effective_tld(DomainName("shop.example.co.uk")).text(),
            "co.uk");
  EXPECT_EQ(psl.registrable_domain(DomainName("shop.example.co.uk")).text(),
            "example.co.uk");
  EXPECT_EQ(psl.effective_tld(DomainName("a.b.com.cn")).text(), "com.cn");
  EXPECT_EQ(psl.registrable_domain(DomainName("a.b.com.cn")).text(),
            "b.com.cn");
}

TEST(PublicSuffixTest, DynamicDnsZonesAreSuffixes) {
  const auto& psl = PublicSuffixList::builtin();
  // The paper extends the PSL with dynamic-DNS zones: each customer of
  // dyndns.org controls a separate child zone.
  EXPECT_EQ(psl.registrable_domain(DomainName("host.myhome.dyndns.org")).text(),
            "myhome.dyndns.org");
  EXPECT_EQ(psl.registrable_domain(DomainName("x.app.herokuapp.com")).text(),
            "app.herokuapp.com");
}

TEST(PublicSuffixTest, WildcardRule) {
  const auto& psl = PublicSuffixList::builtin();
  // "*.ck": every direct child of ck is itself a public suffix.
  EXPECT_EQ(psl.effective_tld(DomainName("shop.foo.ck")).text(), "foo.ck");
  EXPECT_EQ(psl.registrable_domain(DomainName("shop.foo.ck")).text(),
            "shop.foo.ck");
}

TEST(PublicSuffixTest, ExceptionRule) {
  const auto& psl = PublicSuffixList::builtin();
  // "!www.ck" carves www.ck out of the wildcard: registrable domain is
  // www.ck itself.
  EXPECT_EQ(psl.registrable_domain(DomainName("a.www.ck")).text(), "www.ck");
  EXPECT_EQ(psl.suffix_label_count(DomainName("www.ck")), 1u);
}

TEST(PublicSuffixTest, UnknownTldFallsBackToOneLabel) {
  const auto& psl = PublicSuffixList::builtin();
  EXPECT_EQ(psl.effective_tld(DomainName("foo.bar.unknowntld")).text(),
            "unknowntld");
  EXPECT_EQ(psl.registrable_domain(DomainName("foo.bar.unknowntld")).text(),
            "bar.unknowntld");
}

TEST(PublicSuffixTest, PublicSuffixItselfHasNoRegistrableDomain) {
  const auto& psl = PublicSuffixList::builtin();
  EXPECT_TRUE(psl.registrable_domain(DomainName("com")).empty());
  EXPECT_TRUE(psl.registrable_domain(DomainName("co.uk")).empty());
}

TEST(PublicSuffixTest, RootName) {
  const auto& psl = PublicSuffixList::builtin();
  EXPECT_EQ(psl.suffix_label_count(DomainName("")), 0u);
  EXPECT_TRUE(psl.registrable_domain(DomainName("")).empty());
}

TEST(PublicSuffixTest, CustomRules) {
  PublicSuffixList psl;
  psl.add_rule("example");
  psl.add_rule("*.dyn.example");
  psl.add_rule("!static.dyn.example");
  EXPECT_EQ(psl.registrable_domain(DomainName("a.b.dyn.example")).text(),
            "a.b.dyn.example");
  EXPECT_EQ(psl.registrable_domain(DomainName("x.static.dyn.example")).text(),
            "static.dyn.example");
}

TEST(PublicSuffixTest, RulesTextParsing) {
  PublicSuffixList psl;
  psl.add_rules_text("// comment line\n com \n\nco.uk\r\n*.ck\n!www.ck\n");
  EXPECT_EQ(psl.rule_count(), 4u);
  EXPECT_EQ(psl.effective_tld(DomainName("x.example.co.uk")).text(), "co.uk");
}

TEST(PublicSuffixTest, MalformedRulesThrow) {
  PublicSuffixList psl;
  EXPECT_THROW(psl.add_rule(""), std::invalid_argument);
  EXPECT_THROW(psl.add_rule("bad rule"), std::invalid_argument);
  EXPECT_THROW(psl.add_rule("a..b"), std::invalid_argument);
}

TEST(PublicSuffixTest, EmptyListDefaultsToStar) {
  const PublicSuffixList psl;
  EXPECT_EQ(psl.suffix_label_count(DomainName("a.b.c")), 1u);
  EXPECT_EQ(psl.registrable_domain(DomainName("a.b.c")).text(), "b.c");
}

struct SuffixCase {
  const char* name;
  const char* suffix;
  const char* registrable;  // "" when none
};

class SuffixSweepTest : public ::testing::TestWithParam<SuffixCase> {};

TEST_P(SuffixSweepTest, SuffixAndRegistrable) {
  const auto& psl = PublicSuffixList::builtin();
  const SuffixCase& c = GetParam();
  const DomainName name(c.name);
  EXPECT_EQ(psl.effective_tld(name).text(), c.suffix) << c.name;
  EXPECT_EQ(psl.registrable_domain(name).text(), c.registrable) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SuffixSweepTest,
    ::testing::Values(
        SuffixCase{"www.google.com", "com", "google.com"},
        SuffixCase{"a.b.c.d.akamai.net", "net", "akamai.net"},
        SuffixCase{"x.gov.uk", "gov.uk", "x.gov.uk"},
        SuffixCase{"deep.sub.zone.example.org", "org", "example.org"},
        SuffixCase{"com", "com", ""},
        SuffixCase{"avqs.mcafee.com", "com", "mcafee.com"},
        SuffixCase{"edu.cn.example.com", "com", "example.com"}));

}  // namespace
}  // namespace dnsnoise
