// The server mode's golden contract (DESIGN.md §14): a mining day whose
// queries arrive entirely over the UDP socket produces findings
// byte-identical to the same day driven in-process.
//
// The wire path replays the scenario's recorded (ts, client, query) stream
// through net::DnsWireClient in timestamp order, attaching replay metadata
// so the frontend feeds RdnsCluster::query_view the exact same arguments
// the in-process drive loop passes.  Everything downstream — tap capture,
// tree, CHR, labeling, training, parallel mining, evaluation — then runs
// unchanged, so any fingerprint divergence localizes to the wire layer.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/parallel_miner.h"
#include "miner/pipeline.h"
#include "net/udp_client.h"

namespace dnsnoise {
namespace {

ScenarioScale wire_scale() {
  ScenarioScale scale;
  scale.queries_per_day = 12'000;
  scale.client_count = 800;
  scale.population_scale = 0.35;
  scale.seed = 20'261'977;
  return scale;
}

void append_num(std::string& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

std::string findings_fingerprint(
    const std::vector<DisposableZoneFinding>& findings) {
  std::string out;
  for (const DisposableZoneFinding& f : findings) {
    out += f.zone;
    out += '|';
    out += std::to_string(f.depth);
    out += '|';
    out += std::to_string(f.group_size);
    out += '|';
    append_num(out, f.confidence);
    for (const double v : f.features.as_array()) {
      out += '|';
      append_num(out, v);
    }
    out += '\n';
  }
  return out;
}

std::string capture_fingerprint(const DayCapture& capture) {
  std::string out;
  out += "tree:" + std::to_string(capture.tree().node_count()) + "/" +
         std::to_string(capture.tree().black_count());
  out += " chr:" + std::to_string(capture.chr().unique_rrs());
  out += " uniq:" + std::to_string(capture.unique_queried()) + "/" +
         std::to_string(capture.unique_resolved());
  out += " below:" + std::to_string(capture.below_series().sum_total()) + "/" +
         std::to_string(capture.below_series().sum_nxdomain());
  out += " above:" + std::to_string(capture.above_series().sum_total()) + "/" +
         std::to_string(capture.above_series().sum_nxdomain());
  return out;
}

struct RecordedQuery {
  SimTime ts;
  std::uint64_t client;
  std::string qname;
  RRType qtype;
};

TEST(WireGolden, SocketDayMatchesInProcessDayByteForByte) {
  const ScenarioDate date = ScenarioDate::kSep13;
  const std::int64_t day_index = scenario_day_index(date);
  PipelineOptions options;
  options.scale = wire_scale();
  options.cluster.server_count = 2;

  // Record the day's query stream from a scratch scenario.  Same (date,
  // scale) => the generator emits the identical stream in every path.
  std::vector<RecordedQuery> stream;
  {
    Scenario recorder(date, options.scale);
    recorder.traffic().run_day(
        day_index, [&stream](SimTime ts, std::uint64_t client,
                             const QuerySpec& query) {
          stream.push_back({ts, client, query.qname, query.qtype});
        });
  }
  ASSERT_GT(stream.size(), 1000u);

  // Path A: classic in-process pipeline.
  Scenario in_process(date, options.scale);
  DayCapture capture_a(options.capture);
  simulate_day(in_process, capture_a, options, day_index);
  const MiningDayResult result_a =
      finish_mining_day(capture_a, in_process, options);
  ASSERT_TRUE(result_a.ok()) << result_a.error;

  // Path B: same day, every query a real RFC 1035 datagram.
  DnsServerOptions server;
  server.socket_shards = 2;
  MiningSession session;
  session.scale(options.scale)
      .cluster(options.cluster)
      .threads(2)
      .enable_dns_server(true, 0, server);
  const auto day = session.serve(date);
  ASSERT_NE(day, nullptr);
  ASSERT_TRUE(day->ok()) << day->error();

  net::DnsWireClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", day->udp_port(), day->tcp_port()));
  std::uint16_t id = 1;
  std::size_t replayed = 0;
  for (const RecordedQuery& q : stream) {
    const auto qname = DomainName::parse(q.qname);
    if (!qname) continue;  // the drive loop skips unparseable names too
    DnsMessage query = DnsMessage::make_query(id++, *qname, q.qtype);
    net::attach_replay_meta(query, {.ts = q.ts, .client_id = q.client});
    const auto result = client.query(query, /*timeout_ms=*/5000);
    ASSERT_TRUE(result.has_value())
        << "query " << replayed << " (" << q.qname
        << ") failed: " << client.error();
    ++replayed;
  }
  EXPECT_EQ(day->frontend().stats().queries, replayed);
  const MiningDayResult result_b = day->finish();
  ASSERT_TRUE(result_b.ok()) << result_b.error;

  // The whole observable surface must match, byte for byte.
  EXPECT_EQ(capture_fingerprint(capture_a),
            capture_fingerprint(day->capture()));
  EXPECT_EQ(findings_fingerprint(result_a.findings),
            findings_fingerprint(result_b.findings));
  EXPECT_FALSE(result_a.findings.empty());
  EXPECT_EQ(result_a.aggregates.unique_queried,
            result_b.aggregates.unique_queried);
  EXPECT_EQ(result_a.aggregates.unique_resolved,
            result_b.aggregates.unique_resolved);
  EXPECT_EQ(result_a.aggregates.disposable_queried,
            result_b.aggregates.disposable_queried);
  EXPECT_EQ(result_a.aggregates.disposable_resolved,
            result_b.aggregates.disposable_resolved);
  EXPECT_EQ(result_a.evaluation.true_positive_findings,
            result_b.evaluation.true_positive_findings);
  EXPECT_EQ(result_a.evaluation.false_positive_findings,
            result_b.evaluation.false_positive_findings);
}

TEST(WireGolden, ServeWithoutEnableReturnsNull) {
  MiningSession session;
  EXPECT_EQ(session.serve(ScenarioDate::kFeb01), nullptr);
}

}  // namespace
}  // namespace dnsnoise
