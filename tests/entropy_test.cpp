#include "util/entropy.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>

#include "util/rng.h"

namespace dnsnoise {
namespace {

TEST(EntropyTest, EmptyIsZero) { EXPECT_EQ(shannon_entropy(""), 0.0); }

TEST(EntropyTest, SingleRepeatedCharIsZero) {
  EXPECT_EQ(shannon_entropy("aaaaaaaa"), 0.0);
  EXPECT_EQ(shannon_entropy("z"), 0.0);
}

TEST(EntropyTest, TwoEqualSymbolsIsOneBit) {
  EXPECT_NEAR(shannon_entropy("abab"), 1.0, 1e-12);
  EXPECT_NEAR(shannon_entropy("ab"), 1.0, 1e-12);
}

TEST(EntropyTest, UniformHexIsFourBits) {
  EXPECT_NEAR(shannon_entropy("0123456789abcdef"), 4.0, 1e-12);
}

TEST(EntropyTest, OrderInvariant) {
  EXPECT_DOUBLE_EQ(shannon_entropy("hello"), shannon_entropy("olleh"));
}

TEST(EntropyTest, RandomLabelsBeatHumanLabels) {
  // The discriminative property behind the tree-structure features: hash
  // labels carry more character entropy than service words.
  Rng rng(1);
  const std::string random_label = rng.hex_string(26);
  EXPECT_GT(shannon_entropy(random_label), shannon_entropy("www"));
  EXPECT_GT(shannon_entropy(random_label), shannon_entropy("mail"));
  EXPECT_GT(shannon_entropy(random_label), shannon_entropy("images"));
}

TEST(EntropyTest, NormalizedShortStrings) {
  EXPECT_EQ(normalized_entropy(""), 0.0);
  EXPECT_EQ(normalized_entropy("a"), 0.0);
  EXPECT_NEAR(normalized_entropy("ab"), 1.0, 1e-12);
}

class EntropyBoundsTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EntropyBoundsTest, BoundsHoldForRandomStrings) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const std::string s =
        rng.string_over("abcdefghijklmnopqrstuvwxyz0123456789-", GetParam());
    const double h = shannon_entropy(s);
    EXPECT_GE(h, 0.0);
    // Entropy is at most log2(min(length, alphabet)).
    const double bound =
        std::log2(static_cast<double>(std::min<std::size_t>(s.size(), 37)));
    EXPECT_LE(h, bound + 1e-9);
    const double hn = normalized_entropy(s);
    EXPECT_GE(hn, 0.0);
    EXPECT_LE(hn, 1.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, EntropyBoundsTest,
                         ::testing::Values(2, 3, 5, 8, 13, 26, 63));

}  // namespace
}  // namespace dnsnoise
