#include "resolver/dns_cache.h"

#include <gtest/gtest.h>

namespace dnsnoise {
namespace {

std::vector<ResourceRecord> one_answer(const char* name, std::uint32_t ttl) {
  return {{DomainName(name), RRType::A, ttl, "192.0.2.7"}};
}

QuestionKey key_of(const char* name) { return {name, RRType::A}; }

TEST(DnsCacheTest, MissThenHit) {
  DnsCache cache(DnsCacheConfig{.capacity = 16});
  const QuestionKey key = key_of("www.example.com");
  EXPECT_EQ(cache.lookup(key, 0), nullptr);
  cache.insert_positive(key, one_answer("www.example.com", 300), 0);
  const CachedAnswer* hit = cache.lookup(key, 100);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->rcode, RCode::NoError);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(DnsCacheTest, TtlExpiry) {
  DnsCache cache(DnsCacheConfig{.capacity = 16});
  const QuestionKey key = key_of("a.example.com");
  cache.insert_positive(key, one_answer("a.example.com", 60), 0);
  EXPECT_NE(cache.lookup(key, 59), nullptr);
  EXPECT_EQ(cache.lookup(key, 60), nullptr);  // expired exactly at TTL
  EXPECT_EQ(cache.stats().expired_misses, 1u);
  // Expired entries are erased on access.
  EXPECT_EQ(cache.size(), 0u);
}

TEST(DnsCacheTest, ZeroTtlNotCached) {
  DnsCache cache(DnsCacheConfig{.capacity = 16});
  const QuestionKey key = key_of("zero.example.com");
  cache.insert_positive(key, one_answer("zero.example.com", 0), 0);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.lookup(key, 0), nullptr);
}

TEST(DnsCacheTest, MinTtlClampHoldsRecordsLonger) {
  // RFC 1536-style minimum TTL: zero-TTL records are held anyway.
  DnsCacheConfig config;
  config.capacity = 16;
  config.min_ttl = 5;
  DnsCache cache(config);
  const QuestionKey key = key_of("clamped.example.com");
  cache.insert_positive(key, one_answer("clamped.example.com", 0), 0);
  EXPECT_NE(cache.lookup(key, 4), nullptr);
  EXPECT_EQ(cache.lookup(key, 5), nullptr);
}

TEST(DnsCacheTest, MaxTtlClamp) {
  DnsCacheConfig config;
  config.capacity = 16;
  config.max_ttl = 100;
  DnsCache cache(config);
  const QuestionKey key = key_of("huge.example.com");
  cache.insert_positive(key, one_answer("huge.example.com", 1'000'000), 0);
  EXPECT_NE(cache.lookup(key, 99), nullptr);
  EXPECT_EQ(cache.lookup(key, 100), nullptr);
}

TEST(DnsCacheTest, MinTtlAcrossRRsOfSet) {
  DnsCache cache(DnsCacheConfig{.capacity = 16});
  std::vector<ResourceRecord> answers = {
      {DomainName("m.example.com"), RRType::A, 300, "192.0.2.1"},
      {DomainName("m.example.com"), RRType::A, 30, "192.0.2.2"},
  };
  const QuestionKey key = key_of("m.example.com");
  cache.insert_positive(key, std::move(answers), 0);
  EXPECT_NE(cache.lookup(key, 29), nullptr);
  EXPECT_EQ(cache.lookup(key, 30), nullptr);
}

TEST(DnsCacheTest, NegativeCacheDisabledByDefault) {
  DnsCache cache(DnsCacheConfig{.capacity = 16});
  const QuestionKey key = key_of("nx.example.com");
  cache.insert_negative(key, 0);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.lookup(key, 1), nullptr);
}

TEST(DnsCacheTest, NegativeCacheEnabled) {
  DnsCacheConfig config;
  config.capacity = 16;
  config.negative_cache = true;
  config.negative_ttl = 30;
  DnsCache cache(config);
  const QuestionKey key = key_of("nx.example.com");
  cache.insert_negative(key, 0);
  const CachedAnswer* hit = cache.lookup(key, 10);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->rcode, RCode::NXDomain);
  EXPECT_EQ(cache.lookup(key, 30), nullptr);
}

TEST(DnsCacheTest, PrematureEvictionAccounting) {
  // Capacity 2: inserting a third fresh entry evicts a still-fresh one.
  DnsCacheConfig config;
  config.capacity = 2;
  DnsCache cache(config);
  cache.insert_positive(key_of("a.com"), one_answer("a.com", 1000), 0);
  cache.insert_positive(key_of("b.com"), one_answer("b.com", 1000), 0,
                        /*disposable_hint=*/true);
  cache.insert_positive(key_of("c.com"), one_answer("c.com", 1000), 0);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().premature_evictions, 1u);
  // The evicted entry ("a.com") was not disposable.
  EXPECT_EQ(cache.stats().premature_nondisposable_evictions, 1u);
}

TEST(DnsCacheTest, ExpiredEvictionIsNotPremature) {
  DnsCacheConfig config;
  config.capacity = 2;
  DnsCache cache(config);
  cache.insert_positive(key_of("a.com"), one_answer("a.com", 10), 0);
  cache.insert_positive(key_of("b.com"), one_answer("b.com", 1000), 0);
  // Advance time past a.com's TTL before forcing the eviction.
  (void)cache.lookup(key_of("b.com"), 500);
  cache.insert_positive(key_of("c.com"), one_answer("c.com", 1000), 500);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().premature_evictions, 0u);
}

TEST(DnsCacheTest, HitRateComputation) {
  DnsCache cache(DnsCacheConfig{.capacity = 16});
  const QuestionKey key = key_of("h.example.com");
  (void)cache.lookup(key, 0);  // miss
  cache.insert_positive(key, one_answer("h.example.com", 100), 0);
  (void)cache.lookup(key, 1);  // hit
  (void)cache.lookup(key, 2);  // hit
  (void)cache.lookup(key, 3);  // hit
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.75);
}

TEST(DnsCacheTest, EmptyAnswerNotCached) {
  DnsCache cache(DnsCacheConfig{.capacity = 16});
  cache.insert_positive(key_of("e.com"), {}, 0);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(DnsCacheTest, ForEachVisitsEntries) {
  DnsCache cache(DnsCacheConfig{.capacity = 16});
  cache.insert_positive(key_of("a.com"), one_answer("a.com", 100), 0);
  cache.insert_positive(key_of("b.com"), one_answer("b.com", 100), 0);
  std::size_t count = 0;
  cache.for_each([&count](const QuestionKey&, const CachedAnswer&) {
    ++count;
  });
  EXPECT_EQ(count, 2u);
}

TEST(DnsCacheTest, StringViewPathMatchesQuestionKeyPath) {
  DnsCache cache(DnsCacheConfig{.capacity = 16});
  std::vector<ResourceRecord> answers = one_answer("sv.example.com", 300);
  const CachedAnswer* resident =
      cache.insert_positive("sv.example.com", RRType::A, answers, 0);
  ASSERT_NE(resident, nullptr);
  EXPECT_TRUE(answers.empty());  // consumed on successful insert
  ASSERT_EQ(resident->answers.size(), 1u);
  // Both lookup flavours resolve to the same resident entry.
  EXPECT_EQ(cache.lookup("sv.example.com", RRType::A, 10), resident);
  EXPECT_EQ(cache.lookup(key_of("sv.example.com"), 10), resident);
  // Same name, different qtype is a distinct key.
  EXPECT_EQ(cache.lookup("sv.example.com", RRType::AAAA, 10), nullptr);
}

TEST(DnsCacheTest, LookupOfNeverInternedNameCountsMiss) {
  DnsCache cache(DnsCacheConfig{.capacity = 16});
  std::vector<ResourceRecord> answers = one_answer("known.example.com", 300);
  cache.insert_positive("known.example.com", RRType::A, answers, 0);
  // The fast path rejects un-interned names before probing the LRU; the
  // miss must still be accounted exactly like the legacy path did.
  EXPECT_EQ(cache.lookup("unknown.example.com", RRType::A, 0), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(DnsCacheTest, DeclinedInsertLeavesAnswersIntact) {
  DnsCache cache(DnsCacheConfig{.capacity = 16});
  std::vector<ResourceRecord> answers = one_answer("zero.example.com", 0);
  // TTL 0 is not cacheable: insert_positive returns nullptr and must NOT
  // have consumed the caller's answers (the cluster still serves them).
  EXPECT_EQ(cache.insert_positive("zero.example.com", RRType::A, answers, 0),
            nullptr);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].rdata, "192.0.2.7");
}

TEST(DnsCacheTest, ResidentPointerReflectsLatestInsert) {
  DnsCache cache(DnsCacheConfig{.capacity = 16});
  std::vector<ResourceRecord> first = one_answer("up.example.com", 300);
  std::vector<ResourceRecord> second = {
      {DomainName("up.example.com"), RRType::A, 300, "198.51.100.9"}};
  cache.insert_positive("up.example.com", RRType::A, first, 0);
  const CachedAnswer* resident =
      cache.insert_positive("up.example.com", RRType::A, second, 1);
  ASSERT_NE(resident, nullptr);
  ASSERT_EQ(resident->answers.size(), 1u);
  EXPECT_EQ(resident->answers[0].rdata, "198.51.100.9");
  EXPECT_EQ(cache.size(), 1u);
}

}  // namespace
}  // namespace dnsnoise
