#include "util/zipf.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace dnsnoise {
namespace {

TEST(ZipfTest, PmfSumsToOne) {
  const ZipfSampler zipf(100, 1.0);
  double total = 0.0;
  for (std::size_t r = 0; r < zipf.size(); ++r) total += zipf.pmf(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, PmfMonotoneNonIncreasing) {
  const ZipfSampler zipf(50, 1.2);
  for (std::size_t r = 1; r < zipf.size(); ++r) {
    EXPECT_LE(zipf.pmf(r), zipf.pmf(r - 1) + 1e-12);
  }
}

TEST(ZipfTest, ExponentZeroIsUniform) {
  const ZipfSampler zipf(10, 0.0);
  for (std::size_t r = 0; r < zipf.size(); ++r) {
    EXPECT_NEAR(zipf.pmf(r), 0.1, 1e-9);
  }
}

TEST(ZipfTest, PmfOutOfRangeIsZero) {
  const ZipfSampler zipf(5, 1.0);
  EXPECT_EQ(zipf.pmf(5), 0.0);
  EXPECT_EQ(zipf.pmf(1000), 0.0);
}

TEST(ZipfTest, SamplesStayInRange) {
  const ZipfSampler zipf(20, 1.0);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.sample(rng), 20u);
  }
}

TEST(ZipfTest, HeadHeavierThanTail) {
  const ZipfSampler zipf(1000, 1.0);
  Rng rng(2);
  std::size_t head = 0;
  std::size_t tail = 0;
  for (int i = 0; i < 50000; ++i) {
    const std::size_t r = zipf.sample(rng);
    if (r < 10) ++head;
    if (r >= 990) ++tail;
  }
  EXPECT_GT(head, tail * 10);
}

TEST(ZipfTest, EmpiricalFrequencyMatchesPmf) {
  const ZipfSampler zipf(8, 1.0);
  Rng rng(3);
  std::vector<std::size_t> counts(8, 0);
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t r = 0; r < 8; ++r) {
    const double freq = static_cast<double>(counts[r]) / kSamples;
    EXPECT_NEAR(freq, zipf.pmf(r), 0.01) << "rank " << r;
  }
}

TEST(ZipfTest, SingleRank) {
  const ZipfSampler zipf(1, 2.0);
  Rng rng(4);
  EXPECT_EQ(zipf.sample(rng), 0u);
  EXPECT_NEAR(zipf.pmf(0), 1.0, 1e-12);
}

TEST(ZipfTest, InvalidArgumentsThrow) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -0.5), std::invalid_argument);
}

class ZipfExponentTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfExponentTest, CdfCoversUnitIntervalAtEveryExponent) {
  const ZipfSampler zipf(64, GetParam());
  double total = 0.0;
  for (std::size_t r = 0; r < zipf.size(); ++r) total += zipf.pmf(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.sample(rng), 64u);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfExponentTest,
                         ::testing::Values(0.0, 0.3, 0.7, 1.0, 1.5, 2.0, 3.0));

}  // namespace
}  // namespace dnsnoise
