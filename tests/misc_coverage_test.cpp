// Cross-cutting coverage: randomized wire-codec round trips, fpDNS file
// persistence, diurnal/sim-time helpers, message factories, and the less
// traveled configuration corners of resolver and pdns.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>

#include "dns/ip.h"
#include "dns/wire.h"
#include "pdns/fpdns.h"
#include "pdns/pdns_db.h"
#include "resolver/cluster.h"
#include "util/rng.h"
#include "workload/diurnal.h"

namespace dnsnoise {
namespace {

// --------------------------------------------------------------------------
// Randomized wire-codec round trips.

DomainName random_name(Rng& rng) {
  std::string text;
  const std::size_t labels = 1 + rng.below(8);
  for (std::size_t i = 0; i < labels; ++i) {
    if (i > 0) text.push_back('.');
    text += rng.string_over("abcdefghijklmnopqrstuvwxyz0123456789-",
                            1 + rng.below(20));
  }
  // Avoid labels that start/end oddly only in the sense our parser rejects
  // (it accepts hyphens anywhere), so any generated text is valid.
  return DomainName(text);
}

ResourceRecord random_rr(Rng& rng) {
  ResourceRecord rr;
  rr.name = random_name(rng);
  rr.ttl = static_cast<std::uint32_t>(rng.below(86401));
  switch (rng.below(4)) {
    case 0:
      rr.type = RRType::A;
      rr.rdata = format_ipv4(Ipv4{static_cast<std::uint32_t>(rng())});
      break;
    case 1: {
      rr.type = RRType::AAAA;
      Ipv6 ip;
      for (auto& b : ip.bytes) b = static_cast<std::uint8_t>(rng.below(256));
      rr.rdata = format_ipv6(ip);
      break;
    }
    case 2:
      rr.type = RRType::CNAME;
      rr.rdata = random_name(rng).text();
      break;
    default:
      rr.type = RRType::TXT;
      rr.rdata = rng.string_over("abcdefgh ", rng.below(300));
      break;
  }
  return rr;
}

class WireRandomRoundTripTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(WireRandomRoundTripTest, EncodeDecodeIsIdentity) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 150; ++trial) {
    DnsMessage msg = DnsMessage::make_query(
        static_cast<std::uint16_t>(rng.below(65536)), random_name(rng),
        rng.chance(0.5) ? RRType::A : RRType::AAAA);
    msg.header.qr = true;
    msg.header.ra = true;
    msg.header.rcode = rng.chance(0.2) ? RCode::NXDomain : RCode::NoError;
    const std::size_t answers = rng.below(5);
    for (std::size_t i = 0; i < answers; ++i) {
      msg.answers.push_back(random_rr(rng));
    }
    const auto decoded = decode_message(encode_message(msg));
    ASSERT_TRUE(decoded);
    EXPECT_EQ(*decoded, msg);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireRandomRoundTripTest,
                         ::testing::Values(101, 202, 303, 404, 505));

// --------------------------------------------------------------------------
// fpDNS file persistence.

TEST(FpDnsFileTest, SaveLoadRoundTrip) {
  FpDnsDataset dataset;
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    FpDnsEntry entry;
    entry.ts = static_cast<SimTime>(rng.below(86400));
    entry.client_id = rng();
    entry.direction = rng.chance(0.5) ? FpDirection::kBelow : FpDirection::kAbove;
    entry.rcode = rng.chance(0.1) ? RCode::NXDomain : RCode::NoError;
    entry.qname = random_name(rng).text();
    entry.qtype = RRType::A;
    entry.ttl = static_cast<std::uint32_t>(rng.below(86401));
    entry.rdata = entry.rcode == RCode::NoError ? "192.0.2.1" : "";
    dataset.add(std::move(entry));
  }
  const std::string path =
      (std::filesystem::temp_directory_path() / "dnsnoise_fpdns_test.bin")
          .string();
  dataset.save(path);
  const FpDnsDataset loaded = FpDnsDataset::load(path);
  ASSERT_EQ(loaded.size(), dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    EXPECT_EQ(loaded.entries()[i], dataset.entries()[i]);
  }
  std::remove(path.c_str());
}

TEST(FpDnsFileTest, LoadMissingFileThrows) {
  EXPECT_THROW(FpDnsDataset::load("/no/such/fpdns.bin"), std::runtime_error);
}

// --------------------------------------------------------------------------
// Diurnal profile and simulated time.

TEST(DiurnalTest, FractionsSumToOne) {
  const DiurnalProfile profile;
  double total = 0.0;
  for (int hour = 0; hour < 24; ++hour) total += profile.fraction(hour);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(DiurnalTest, DefaultShapeHasEveningPeakAndNightTrough) {
  const DiurnalProfile profile;
  EXPECT_GT(profile.weight(20), profile.weight(4) * 3);
  EXPECT_GT(profile.weight(12), profile.weight(3));
}

TEST(DiurnalTest, FlatProfile) {
  constexpr DiurnalProfile flat = DiurnalProfile::flat();
  for (int hour = 0; hour < 24; ++hour) {
    EXPECT_DOUBLE_EQ(flat.fraction(hour), 1.0 / 24.0);
  }
}

TEST(SimTimeTest, Helpers) {
  EXPECT_EQ(day_of(0), 0);
  EXPECT_EQ(day_of(86399), 0);
  EXPECT_EQ(day_of(86400), 1);
  EXPECT_EQ(second_of_day(86401), 1);
  EXPECT_EQ(hour_of_day(3 * kSecondsPerDay + 7 * kSecondsPerHour + 59), 7);
}

// --------------------------------------------------------------------------
// Message factories.

TEST(MessageFactoryTest, QueryShape) {
  const DnsMessage query =
      DnsMessage::make_query(42, DomainName("a.example.com"), RRType::AAAA);
  EXPECT_EQ(query.header.id, 42);
  EXPECT_FALSE(query.header.qr);
  EXPECT_TRUE(query.header.rd);
  ASSERT_EQ(query.questions.size(), 1u);
  EXPECT_EQ(query.questions[0].type, RRType::AAAA);
  EXPECT_TRUE(query.answers.empty());
}

TEST(MessageFactoryTest, ResponseEchoesQuestion) {
  const DnsMessage query =
      DnsMessage::make_query(9, DomainName("x.example.org"), RRType::A);
  const DnsMessage response =
      DnsMessage::make_response(query, RCode::NXDomain, {});
  EXPECT_EQ(response.header.id, 9);
  EXPECT_TRUE(response.header.qr);
  EXPECT_TRUE(response.header.ra);
  EXPECT_EQ(response.header.rcode, RCode::NXDomain);
  EXPECT_EQ(response.questions, query.questions);
}

// --------------------------------------------------------------------------
// Cluster corner: random balancing spreads load.

TEST(ClusterBalancingTest, RandomPolicyUsesAllServers) {
  SyntheticAuthority authority;
  authority.register_zone(DomainName("example.com"),
                          SyntheticAuthority::make_flat_a_zone(300));
  ClusterConfig config;
  config.server_count = 4;
  config.balancing = Balancing::kRandom;
  RdnsCluster cluster(config, authority);
  std::set<std::size_t> servers;
  for (int i = 0; i < 200; ++i) {
    servers.insert(
        cluster.query(1, {DomainName("w.example.com"), RRType::A}, i).server);
  }
  EXPECT_EQ(servers.size(), 4u);
}

// --------------------------------------------------------------------------
// pDNS-DB: multiple depths under one zone, deep wildcard folding.

TEST(PdnsDbDepthTest, MultipleDepthRulesUnderOneZone) {
  PassiveDnsDb db(/*wildcard_folding=*/true);
  db.add_rule({"zone.example.com", 4});
  db.add_rule({"zone.example.com", 6});
  EXPECT_EQ(db.stored_name(DomainName("a.zone.example.com")),
            "*.zone.example.com");
  EXPECT_EQ(db.stored_name(DomainName("a.b.c.zone.example.com")),
            "*.zone.example.com");
  // Depth 5 has no rule: unfolded.
  EXPECT_EQ(db.stored_name(DomainName("a.b.zone.example.com")),
            "a.b.zone.example.com");
}

TEST(PdnsDbDepthTest, MostSpecificZoneWins) {
  PassiveDnsDb db(true);
  db.add_rule({"example.com", 4});
  db.add_rule({"sub.example.com", 4});
  // Both rules cover depth-4 names under sub.example.com; the walk starts
  // from the most specific enclosing zone.
  EXPECT_EQ(db.stored_name(DomainName("x.sub.example.com")),
            "*.sub.example.com");
  EXPECT_EQ(db.stored_name(DomainName("x.y.example.com")), "*.example.com");
}

// --------------------------------------------------------------------------
// Rng distribution sanity that other suites don't cover.

TEST(RngDistributionTest, ParetoMean) {
  Rng rng(5);
  const double xm = 1.0;
  const double alpha = 3.0;
  double sum = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) sum += rng.pareto(xm, alpha);
  // E[X] = alpha * xm / (alpha - 1) = 1.5.
  EXPECT_NEAR(sum / kSamples, 1.5, 0.02);
}

}  // namespace
}  // namespace dnsnoise
