// OpenMetrics exposition (obs/openmetrics): golden-text output for a known
// registry, plus a parse-back pass that checks the invariants a scraper
// relies on — every series belongs to a # TYPE family, histogram buckets
// are cumulative and closed by le="+Inf", label values are escaped, and
// the document ends with # EOF.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/openmetrics.h"

namespace dnsnoise::obs {
namespace {

TEST(OpenMetrics, NameIsPrefixedAndSanitized) {
  EXPECT_EQ(openmetrics_name("cluster.below_answers"),
            "dnsnoise_cluster_below_answers");
  EXPECT_EQ(openmetrics_name("engine.shard0.wall_seconds"),
            "dnsnoise_engine_shard0_wall_seconds");
  // Colons survive (valid in OpenMetrics names); everything else exotic
  // folds to '_'.
  EXPECT_EQ(openmetrics_name("a:b-c d\"e"), "dnsnoise_a:b_c_d_e");
}

TEST(OpenMetrics, EscapesLabelValues) {
  EXPECT_EQ(openmetrics_escape_label("plain"), "plain");
  EXPECT_EQ(openmetrics_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(openmetrics_escape_label("a\"b"), "a\\\"b");
  EXPECT_EQ(openmetrics_escape_label("a\nb"), "a\\nb");
}

TEST(OpenMetrics, GoldenExposition) {
  MetricsRegistry registry;
  registry.counter("miner.findings").add(3);
  registry.gauge("engine.shard0.wall_seconds").set(1.5);
  const std::string text = to_openmetrics(registry.snapshot());
  EXPECT_EQ(text,
            "# TYPE dnsnoise_telemetry info\n"
            "dnsnoise_telemetry_info{schema=\"dnsnoise-openmetrics-v1\"} 1\n"
            "# TYPE dnsnoise_engine_shard0_wall_seconds gauge\n"
            "dnsnoise_engine_shard0_wall_seconds 1.5\n"
            "# TYPE dnsnoise_miner_findings counter\n"
            "dnsnoise_miner_findings_total 3\n"
            "# EOF\n");
}

TEST(OpenMetrics, ConstantLabelsAreStampedAndEscaped) {
  MetricsRegistry registry;
  registry.counter("c").add(1);
  const std::string text = to_openmetrics(
      registry.snapshot(), {{"bench", "fig\"02\\x"}, {"arch", "x86"}});
  EXPECT_NE(
      text.find("dnsnoise_c_total{arch=\"x86\",bench=\"fig\\\"02\\\\x\"} 1\n"),
      std::string::npos);
  // The info series carries the constant labels plus the schema.
  EXPECT_NE(text.find("dnsnoise_telemetry_info{arch=\"x86\","
                      "bench=\"fig\\\"02\\\\x\",schema="
                      "\"dnsnoise-openmetrics-v1\"} 1\n"),
            std::string::npos);
}

TEST(OpenMetrics, TimerBecomesSummaryWithMinMaxGauges) {
  MetricsRegistry registry;
  registry.timer("engine.shard").record_ns(2'000'000'000ULL);
  registry.timer("engine.shard").record_ns(1'000'000'000ULL);
  const std::string text = to_openmetrics(registry.snapshot());
  EXPECT_NE(text.find("# TYPE dnsnoise_engine_shard_seconds summary\n"),
            std::string::npos);
  EXPECT_NE(text.find("dnsnoise_engine_shard_seconds_count 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("dnsnoise_engine_shard_seconds_sum 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("dnsnoise_engine_shard_min_seconds 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("dnsnoise_engine_shard_max_seconds 2\n"),
            std::string::npos);
}

TEST(OpenMetrics, HistogramEmitsPercentileGauges) {
  MetricsRegistry registry;
  Histogram& histo = registry.histogram("h");
  for (int i = 0; i < 100; ++i) histo.record(100.0);
  const std::string text = to_openmetrics(registry.snapshot());
  EXPECT_NE(text.find("# TYPE dnsnoise_h_percentile gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("dnsnoise_h_percentile{p=\"50\"} "), std::string::npos);
  EXPECT_NE(text.find("dnsnoise_h_percentile{p=\"99.9\"} "),
            std::string::npos);
}

// --- Parse-back: a minimal exposition-format reader ------------------------

struct ParsedSeries {
  std::string name;                            // series name, labels stripped
  std::map<std::string, std::string> labels;   // raw (still escaped) values
  double value = 0.0;
};

struct ParsedExposition {
  std::map<std::string, std::string> types;  // family -> type
  std::vector<ParsedSeries> series;
  bool saw_eof = false;
};

void parse_exposition(const std::string& text, ParsedExposition* out) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line == "# EOF") {
      out->saw_eof = true;
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::string rest = line.substr(7);
      const auto space = rest.find(' ');
      out->types[rest.substr(0, space)] = rest.substr(space + 1);
      continue;
    }
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    ParsedSeries series;
    const auto name_end = line.find_first_of("{ ");
    ASSERT_NE(name_end, std::string::npos) << line;
    series.name = line.substr(0, name_end);
    std::size_t pos = name_end;
    if (line[pos] == '{') {
      const auto close = line.find('}', pos);
      ASSERT_NE(close, std::string::npos) << line;
      std::string body = line.substr(pos + 1, close - pos - 1);
      std::istringstream labels(body);
      std::string pair;
      while (std::getline(labels, pair, ',')) {
        const auto eq = pair.find('=');
        ASSERT_NE(eq, std::string::npos) << line;
        std::string value = pair.substr(eq + 1);
        ASSERT_GE(value.size(), 2u);
        series.labels[pair.substr(0, eq)] =
            value.substr(1, value.size() - 2);  // strip quotes
      }
      pos = close + 1;
    }
    series.value = std::stod(line.substr(pos + 1));
    out->series.push_back(std::move(series));
  }
}

TEST(OpenMetrics, ParseBackChecksScraperInvariants) {
  MetricsRegistry registry;
  registry.counter("cluster.below_answers").add(42);
  registry.gauge("obs.run_active").set(1.0);
  registry.timer("miner.mine").record_ns(5'000'000ULL);
  Histogram& histo = registry.histogram("cluster.tap_batch_size");
  histo.record(0.5);  // underflow
  for (int i = 0; i < 10; ++i) histo.record(8.0);
  for (int i = 0; i < 5; ++i) histo.record(500.0);

  const std::string text =
      to_openmetrics(registry.snapshot(), {{"run", "test"}});
  ParsedExposition parsed;
  ASSERT_NO_FATAL_FAILURE(parse_exposition(text, &parsed));
  EXPECT_TRUE(parsed.saw_eof);

  // Every series maps back to a declared family (exact name, or the
  // conventional suffix of its family).
  for (const ParsedSeries& series : parsed.series) {
    bool matched = parsed.types.count(series.name) > 0;
    for (const char* suffix :
         {"_total", "_bucket", "_sum", "_count", "_info"}) {
      const std::string s(suffix);
      if (series.name.size() > s.size() &&
          series.name.compare(series.name.size() - s.size(), s.size(), s) ==
              0) {
        matched = matched ||
                  parsed.types.count(
                      series.name.substr(0, series.name.size() - s.size())) >
                      0;
      }
    }
    EXPECT_TRUE(matched) << "series without # TYPE: " << series.name;
    // Constant labels survive on every series.
    const auto run = series.labels.find("run");
    ASSERT_NE(run, series.labels.end()) << series.name;
    EXPECT_EQ(run->second, "test");
  }

  // Histogram buckets: cumulative, monotone, closed by le="+Inf" whose
  // value equals _count; _count equals total recorded observations.
  const std::string family = "dnsnoise_cluster_tap_batch_size";
  EXPECT_EQ(parsed.types[family], "histogram");
  double prev = -1.0;
  double inf_value = -1.0;
  for (const ParsedSeries& series : parsed.series) {
    if (series.name != family + "_bucket") continue;
    EXPECT_GE(series.value, prev) << "bucket counts must be cumulative";
    prev = series.value;
    if (series.labels.at("le") == "+Inf") inf_value = series.value;
  }
  EXPECT_EQ(inf_value, 16.0);
  for (const ParsedSeries& series : parsed.series) {
    if (series.name == family + "_count") EXPECT_EQ(series.value, 16.0);
    if (series.name == family + "_sum") EXPECT_GT(series.value, 0.0);
    if (series.name == "dnsnoise_cluster_below_answers_total") {
      EXPECT_EQ(series.value, 42.0);
    }
  }
}

}  // namespace
}  // namespace dnsnoise::obs
