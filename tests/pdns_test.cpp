#include <gtest/gtest.h>

#include "pdns/fpdns.h"
#include "pdns/pdns_db.h"
#include "pdns/rpdns.h"

namespace dnsnoise {
namespace {

// --------------------------------------------------------------------------
// fpDNS

TEST(FpDnsTest, AddResponseFlattensAnswerSection) {
  FpDnsDataset dataset;
  const Question question{DomainName("x.example.com"), RRType::A};
  std::vector<ResourceRecord> answers = {
      {DomainName("x.example.com"), RRType::CNAME, 60, "e.l.example.com"},
      {DomainName("e.l.example.com"), RRType::A, 60, "192.0.2.1"},
  };
  dataset.add_response(100, 77, FpDirection::kBelow, question, RCode::NoError,
                       answers);
  ASSERT_EQ(dataset.size(), 2u);
  EXPECT_EQ(dataset.entries()[0].qname, "x.example.com");
  EXPECT_EQ(dataset.entries()[0].qtype, RRType::CNAME);
  EXPECT_EQ(dataset.entries()[1].qname, "e.l.example.com");
  EXPECT_EQ(dataset.entries()[1].ttl, 60u);
  EXPECT_EQ(dataset.entries()[0].client_id, 77u);
  EXPECT_TRUE(dataset.entries()[0].successful());
}

TEST(FpDnsTest, NxdomainBecomesSingleEntry) {
  FpDnsDataset dataset;
  const Question question{DomainName("nx.example.com"), RRType::A};
  dataset.add_response(5, 1, FpDirection::kBelow, question, RCode::NXDomain,
                       {});
  ASSERT_EQ(dataset.size(), 1u);
  EXPECT_EQ(dataset.entries()[0].rcode, RCode::NXDomain);
  EXPECT_TRUE(dataset.entries()[0].rdata.empty());
  EXPECT_FALSE(dataset.entries()[0].successful());
}

TEST(FpDnsTest, SerializeRoundTrip) {
  FpDnsDataset dataset;
  const Question q1{DomainName("a.example.com"), RRType::A};
  const Question q2{DomainName("b.example.com"), RRType::AAAA};
  std::vector<ResourceRecord> answers = {
      {DomainName("a.example.com"), RRType::A, 30, "192.0.2.9"}};
  dataset.add_response(1000, 42, FpDirection::kBelow, q1, RCode::NoError,
                       answers);
  dataset.add_response(1001, 0, FpDirection::kAbove, q2, RCode::NXDomain, {});

  const auto bytes = dataset.serialize();
  const FpDnsDataset loaded = FpDnsDataset::deserialize(bytes);
  ASSERT_EQ(loaded.size(), dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    EXPECT_EQ(loaded.entries()[i], dataset.entries()[i]) << i;
  }
}

TEST(FpDnsTest, DeserializeRejectsBadMagic) {
  std::vector<std::uint8_t> junk = {'X', 'X', 'X', 'X', 0, 0, 0, 0,
                                    0,   0,   0,   0};
  EXPECT_THROW(FpDnsDataset::deserialize(junk), std::invalid_argument);
}

TEST(FpDnsTest, DeserializeRejectsTruncation) {
  FpDnsDataset dataset;
  const Question q{DomainName("a.example.com"), RRType::A};
  std::vector<ResourceRecord> answers = {
      {DomainName("a.example.com"), RRType::A, 30, "192.0.2.9"}};
  dataset.add_response(1, 2, FpDirection::kBelow, q, RCode::NoError, answers);
  auto bytes = dataset.serialize();
  bytes.resize(bytes.size() - 5);
  EXPECT_THROW(FpDnsDataset::deserialize(bytes), std::invalid_argument);
}

// --------------------------------------------------------------------------
// rpDNS

TEST(RpDnsTest, DeduplicatesAcrossDays) {
  RpDnsDataset rpdns;
  const RRKey key{"x.example.com", RRType::A, "192.0.2.1"};
  EXPECT_TRUE(rpdns.add(key, 1));
  EXPECT_FALSE(rpdns.add(key, 1));
  EXPECT_FALSE(rpdns.add(key, 2));  // same RR later: not new
  EXPECT_EQ(rpdns.unique_records(), 1u);
  EXPECT_EQ(rpdns.first_seen(key), 1);
}

TEST(RpDnsTest, DifferentRdataIsDifferentRecord) {
  RpDnsDataset rpdns;
  EXPECT_TRUE(rpdns.add({"x.example.com", RRType::A, "192.0.2.1"}, 1));
  EXPECT_TRUE(rpdns.add({"x.example.com", RRType::A, "192.0.2.2"}, 1));
  EXPECT_TRUE(rpdns.add({"x.example.com", RRType::AAAA, "2001:db8::1"}, 1));
  EXPECT_EQ(rpdns.unique_records(), 3u);
}

TEST(RpDnsTest, NewPerDayCounters) {
  RpDnsDataset rpdns;
  rpdns.add({"a.com", RRType::A, "1"}, 1);
  rpdns.add({"b.com", RRType::A, "1"}, 1);
  rpdns.add({"c.com", RRType::A, "1"}, 2);
  rpdns.add({"a.com", RRType::A, "1"}, 2);  // duplicate
  EXPECT_EQ(rpdns.new_records_on(1), 2u);
  EXPECT_EQ(rpdns.new_records_on(2), 1u);
  EXPECT_EQ(rpdns.new_records_on(3), 0u);
  EXPECT_EQ(rpdns.days(), (std::vector<std::int64_t>{1, 2}));
}

TEST(RpDnsTest, FirstSeenMissing) {
  const RpDnsDataset rpdns;
  EXPECT_EQ(rpdns.first_seen({"none.com", RRType::A, "x"}), -1);
}

TEST(RpDnsTest, StorageBytesGrowOnlyOnNewRecords) {
  RpDnsDataset rpdns;
  rpdns.add({"a.example.com", RRType::A, "192.0.2.1"}, 1);
  const std::uint64_t after_one = rpdns.storage_bytes();
  EXPECT_GT(after_one, 0u);
  rpdns.add({"a.example.com", RRType::A, "192.0.2.1"}, 2);
  EXPECT_EQ(rpdns.storage_bytes(), after_one);
  rpdns.add({"b.example.com", RRType::A, "192.0.2.2"}, 2);
  EXPECT_GT(rpdns.storage_bytes(), after_one);
}

// --------------------------------------------------------------------------
// pDNS-DB with wildcard folding

TEST(PdnsDbTest, NoFoldingByDefault) {
  PassiveDnsDb db(/*wildcard_folding=*/false);
  db.add_rule({"dns.xx.fbcdn.net", 5});
  EXPECT_EQ(db.stored_name(DomainName("1022vr5.dns.xx.fbcdn.net")),
            "1022vr5.dns.xx.fbcdn.net");
}

TEST(PdnsDbTest, FoldsPaperExample) {
  PassiveDnsDb db(/*wildcard_folding=*/true);
  db.add_rule({"dns.xx.fbcdn.net", 5});
  // Paper §VI-C: 1022vr5.dns.xx.fbcdn.net -> *.dns.xx.fbcdn.net.
  EXPECT_EQ(db.stored_name(DomainName("1022vr5.dns.xx.fbcdn.net")),
            "*.dns.xx.fbcdn.net");
}

TEST(PdnsDbTest, DepthMustMatch) {
  PassiveDnsDb db(true);
  db.add_rule({"dns.xx.fbcdn.net", 5});
  // A 6-label name under the same zone is a different group: not folded.
  EXPECT_EQ(db.stored_name(DomainName("a.b.dns.xx.fbcdn.net")),
            "a.b.dns.xx.fbcdn.net");
}

TEST(PdnsDbTest, UnrelatedNamesUntouched) {
  PassiveDnsDb db(true);
  db.add_rule({"dns.xx.fbcdn.net", 5});
  EXPECT_EQ(db.stored_name(DomainName("www.example.com")), "www.example.com");
}

TEST(PdnsDbTest, FoldingCollapsesStorage) {
  PassiveDnsDb raw(false);
  PassiveDnsDb folded(true);
  const DisposableGroupRule rule{"avqs.vendor.com", 4};
  raw.add_rule(rule);
  folded.add_rule(rule);
  // 1000 one-time names, 4 pooled rdata values.
  for (int i = 0; i < 1000; ++i) {
    const DomainName name("h" + std::to_string(i) + ".avqs.vendor.com");
    const std::string rdata = "127.0.0." + std::to_string(i % 4);
    raw.add(name, RRType::A, rdata, 1);
    folded.add(name, RRType::A, rdata, 1);
  }
  EXPECT_EQ(raw.unique_records(), 1000u);
  EXPECT_EQ(folded.unique_records(), 4u);  // one per pooled rdata
  EXPECT_EQ(folded.folded_additions(), 1000u);
  EXPECT_LT(folded.storage_bytes(), raw.storage_bytes() / 100);
}

TEST(PdnsDbTest, RuleCount) {
  PassiveDnsDb db(true);
  db.add_rule({"a.com", 3});
  db.add_rule({"a.com", 4});
  db.add_rule({"b.com", 3});
  db.add_rule({"b.com", 3});  // duplicate
  EXPECT_EQ(db.rule_count(), 3u);
}

}  // namespace
}  // namespace dnsnoise
