// obs/latency: bucket math, quantile edge cases, shard-merge determinism,
// the slow-query log, and (under TSan via the engine label) concurrent
// record/snapshot safety.  Also pins the edge-case behavior of the
// registry-histogram estimators (obs::estimate_quantile) the exposition
// path shares with the recorder.
#include "obs/latency.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/rng.h"

namespace dnsnoise::obs {
namespace {

using Buckets = LatencyBuckets;

TEST(LatencyBuckets, SmallValuesGetExactBuckets) {
  for (std::uint64_t v = 0; v < Buckets::kSubCount; ++v) {
    EXPECT_EQ(Buckets::index(v), v);
    EXPECT_EQ(Buckets::lower_bound(v), v);
    EXPECT_EQ(Buckets::upper_bound(v), v + 1);
  }
}

TEST(LatencyBuckets, IndexIsMonotoneAndConsistentWithBounds) {
  // Walk powers of two with offsets; every value must land in a bucket
  // whose [lower, upper) range contains it, and indices must not decrease.
  std::size_t prev = 0;
  for (unsigned e = 0; e < Buckets::kMaxExponent; ++e) {
    for (const std::uint64_t off : {std::uint64_t{0}, std::uint64_t{1}}) {
      const std::uint64_t v = (std::uint64_t{1} << e) + off;
      const std::size_t i = Buckets::index(v);
      EXPECT_GE(i, prev) << "v=" << v;
      EXPECT_LE(Buckets::lower_bound(i), v) << "v=" << v;
      EXPECT_GT(Buckets::upper_bound(i), v) << "v=" << v;
      prev = i;
    }
  }
}

TEST(LatencyBuckets, RelativeWidthIsBounded) {
  // The HDR guarantee: above the exact range, width / lower <= 1/32.
  for (std::size_t i = Buckets::kSubCount; i < Buckets::kBucketCount; ++i) {
    const double lo = static_cast<double>(Buckets::lower_bound(i));
    const double width =
        static_cast<double>(Buckets::upper_bound(i) - Buckets::lower_bound(i));
    EXPECT_LE(width / lo, 1.0 / 32 + 1e-12) << "bucket " << i;
  }
}

TEST(LatencyBuckets, HugeValuesClampToTopBucket) {
  EXPECT_EQ(Buckets::index(~std::uint64_t{0}), Buckets::kBucketCount - 1);
  EXPECT_EQ(Buckets::index(std::uint64_t{1} << Buckets::kMaxExponent),
            Buckets::kBucketCount - 1);
}

TEST(LatencySnapshot, EmptyQuantilesAreZero) {
  LatencyRecorder recorder;
  const LatencySnapshot snap = recorder.snapshot();
  EXPECT_TRUE(snap.empty());
  EXPECT_EQ(snap.quantile_ns(0.0), 0.0);
  EXPECT_EQ(snap.quantile_ns(0.5), 0.0);
  EXPECT_EQ(snap.quantile_ns(1.0), 0.0);
  EXPECT_EQ(snap.mean_ns(), 0.0);
}

TEST(LatencySnapshot, SingleValueCollapsesEveryQuantile) {
  LatencyRecorder recorder;
  recorder.shard(0).record(17);  // exact bucket: quantiles are exact
  const LatencySnapshot snap = recorder.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.min_ns, 17u);
  EXPECT_EQ(snap.max_ns, 17u);
  for (const double q : {0.0, 0.001, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(snap.quantile_ns(q), 17.0) << "q=" << q;
  }
}

TEST(LatencySnapshot, ExtremeQuantilesReturnTrackedMinMax) {
  LatencyRecorder recorder;
  auto& shard = recorder.shard(0);
  shard.record(100);
  shard.record(1'000'000);
  shard.record(50'000'000);
  const LatencySnapshot snap = recorder.snapshot();
  EXPECT_EQ(snap.quantile_ns(0.0), 100.0);
  EXPECT_EQ(snap.quantile_ns(-1.0), 100.0);
  EXPECT_EQ(snap.quantile_ns(1.0), 50'000'000.0);
  EXPECT_EQ(snap.quantile_ns(2.0), 50'000'000.0);
  // Interior quantiles stay within the tracked extremes.
  for (const double q : {0.01, 0.5, 0.99}) {
    EXPECT_GE(snap.quantile_ns(q), 100.0);
    EXPECT_LE(snap.quantile_ns(q), 50'000'000.0);
  }
}

TEST(LatencySnapshot, QuantileErrorIsBoundedByBucketWidth) {
  LatencyRecorder recorder;
  auto& shard = recorder.shard(0);
  Rng rng(7);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 10'000; ++i) {
    values.push_back(50 + rng.below(1'000'000));
  }
  for (const std::uint64_t v : values) shard.record(v);
  std::sort(values.begin(), values.end());
  const LatencySnapshot snap = recorder.snapshot();
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(values.size())));
    const double exact = static_cast<double>(values[rank - 1]);
    const double est = snap.quantile_ns(q);
    // 1/32 bucket width plus interpolation slack.
    EXPECT_NEAR(est, exact, exact * (2.0 / 32) + 1.0) << "q=" << q;
  }
}

TEST(LatencySnapshot, SaturationIsCountedAndClamped) {
  LatencyRecorder recorder;
  recorder.shard(0).record(std::uint64_t{1} << 60);
  const LatencySnapshot snap = recorder.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.saturated, 1u);
  EXPECT_EQ(snap.max_ns, std::uint64_t{1} << 60);
}

TEST(LatencyRecorder, ShardedMergeMatchesSingleShard) {
  // The determinism contract: counts depend only on the recorded value
  // multiset, never on which shard recorded what.
  Rng rng(42);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 50'000; ++i) values.push_back(rng.below(10'000'000));

  LatencyRecorder one(1);
  LatencyRecorder eight(8);
  for (std::size_t i = 0; i < values.size(); ++i) {
    one.shard(0).record(values[i]);
    eight.shard(i % 8).record(values[i]);
  }
  const LatencySnapshot a = one.snapshot();
  const LatencySnapshot b = eight.snapshot();
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum_ns, b.sum_ns);
  EXPECT_EQ(a.min_ns, b.min_ns);
  EXPECT_EQ(a.max_ns, b.max_ns);
  EXPECT_EQ(a.quantile_ns(0.99), b.quantile_ns(0.99));
}

TEST(LatencyRecorder, ThreadShardRecordingIsExactAfterJoin) {
  // Engine-labeled so the TSan CI lane exercises the concurrent path.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  LatencyRecorder recorder(4);  // fewer shards than threads: forced sharing
  std::atomic<bool> stop{false};
  std::thread reader([&recorder, &stop]() {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)recorder.snapshot();  // racing reads must stay well-defined
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&recorder, t]() {
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kPerThread; ++i) {
        recorder.thread_shard().record(rng.below(1'000'000));
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(recorder.snapshot().count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(LatencyRecorder, ResetZeroesEverything) {
  LatencyRecorder recorder(2);
  recorder.shard(0).record(100);
  recorder.shard(1).record(200);
  recorder.reset();
  const LatencySnapshot snap = recorder.snapshot();
  EXPECT_TRUE(snap.empty());
  EXPECT_EQ(snap.min_ns, 0u);
  EXPECT_EQ(snap.max_ns, 0u);
}

TEST(LatencySnapshot, DeltaSinceIsolatesNewCounts) {
  LatencyRecorder recorder;
  recorder.shard(0).record(100);
  recorder.shard(0).record(200);
  const LatencySnapshot first = recorder.snapshot();
  recorder.shard(0).record(300);
  const LatencySnapshot second = recorder.snapshot();
  const LatencySnapshot delta = second.delta_since(first);
  EXPECT_EQ(delta.count, 1u);
  EXPECT_EQ(delta.sum_ns, 300u);
  EXPECT_EQ(delta.counts[LatencyBuckets::index(300)], 1u);
}

TEST(LatencySnapshot, PublishToFeedsRegistryHistogram) {
  MetricsRegistry registry;
  Histogram& hist = registry.histogram("test.latency_ns", 1e10, 8);
  LatencyRecorder recorder;
  for (int i = 0; i < 1000; ++i) {
    recorder.shard(0).record(10'000 + static_cast<std::uint64_t>(i));
  }
  recorder.snapshot().publish_to(hist);
  const MetricsSnapshot snap = registry.snapshot();
  const MetricSample* sample = snap.find("test.latency_ns");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->count, 1000u);
  // The published quantile must land near the recorded range.
  const double p50 = estimate_quantile(*sample, 0.5);
  EXPECT_GT(p50, 5'000.0);
  EXPECT_LT(p50, 20'000.0);
}

// --- registry-histogram estimator edge cases -------------------------------

TEST(EstimateQuantile, EmptyHistogramIsZero) {
  MetricsRegistry registry;
  registry.histogram("h", 1e9, 4);
  const MetricsSnapshot snap = registry.snapshot();
  const MetricSample* sample = snap.find("h");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(estimate_quantile(*sample, 0.5), 0.0);
  const HistogramPercentiles p = estimate_percentiles(*sample);
  EXPECT_EQ(p.p50, 0.0);
  EXPECT_EQ(p.p999, 0.0);
}

TEST(EstimateQuantile, OutOfRangeQReturnsZero) {
  MetricsRegistry registry;
  registry.histogram("h", 1e9, 4).record(123.0);
  const MetricsSnapshot snap = registry.snapshot();
  const MetricSample* sample = snap.find("h");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(estimate_quantile(*sample, 0.0), 0.0);
  EXPECT_EQ(estimate_quantile(*sample, 1.0), 0.0);
  EXPECT_EQ(estimate_quantile(*sample, -0.5), 0.0);
  EXPECT_EQ(estimate_quantile(*sample, 1.5), 0.0);
}

TEST(EstimateQuantile, SingleBucketBoundsEveryQuantile) {
  MetricsRegistry registry;
  Histogram& hist = registry.histogram("h", 1e9, 4);
  for (int i = 0; i < 100; ++i) hist.record(123.0);
  const MetricsSnapshot snap = registry.snapshot();
  const MetricSample* sample = snap.find("h");
  ASSERT_NE(sample, nullptr);
  ASSERT_EQ(sample->bins.size(), 1u);
  for (const double q : {0.001, 0.5, 0.999}) {
    const double est = estimate_quantile(*sample, q);
    EXPECT_GE(est, sample->bins[0].lo) << "q=" << q;
    EXPECT_LE(est, sample->bins[0].hi) << "q=" << q;
  }
}

// --- slow-query log --------------------------------------------------------

SlowQueryEntry make_entry(std::uint64_t total_ns, const std::string& qname) {
  SlowQueryEntry entry;
  entry.total_ns = total_ns;
  entry.decode_ns = total_ns / 4;
  entry.cluster_ns = total_ns / 2;
  entry.encode_ns = total_ns / 4;
  entry.qname = qname;
  return entry;
}

TEST(SlowQueryLog, KeepsTheSlowestAndEvictsTheFastest) {
  SlowQueryLog log(3);
  EXPECT_TRUE(log.would_admit(1));  // empty log admits anything positive
  log.maybe_add(make_entry(100, "a."));
  log.maybe_add(make_entry(300, "b."));
  log.maybe_add(make_entry(200, "c."));
  // Full: threshold is the current floor (100); slower queries displace it.
  EXPECT_FALSE(log.would_admit(100));
  log.maybe_add(make_entry(50, "too-fast."));
  log.maybe_add(make_entry(400, "d."));
  const auto entries = log.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].qname, "d.");  // slowest first
  EXPECT_EQ(entries[1].qname, "b.");
  EXPECT_EQ(entries[2].qname, "c.");
}

TEST(SlowQueryLog, JsonCarriesSchemaAndBreakdown) {
  SlowQueryLog log(2);
  log.maybe_add(make_entry(1000, "slow.example."));
  const std::string json = log.to_json();
  EXPECT_NE(json.find("dnsnoise-slowlog-v1"), std::string::npos);
  EXPECT_NE(json.find("slow.example."), std::string::npos);
  EXPECT_NE(json.find("\"cluster_ns\": 500"), std::string::npos);
}

TEST(SlowQueryLog, JsonEntryCapKeepsTheWorstN) {
  SlowQueryLog log(8);
  for (std::uint64_t i = 1; i <= 8; ++i) {
    log.maybe_add(make_entry(i * 100, "q" + std::to_string(i) + "."));
  }
  // Cap 2: only the two slowest entries survive, worst first.
  const std::string capped = log.to_json(2);
  EXPECT_NE(capped.find("\"q8.\""), std::string::npos);
  EXPECT_NE(capped.find("\"q7.\""), std::string::npos);
  EXPECT_EQ(capped.find("\"q6.\""), std::string::npos);
  // Cap 0 and cap >= size both emit everything.
  EXPECT_EQ(log.to_json(0), log.to_json(64));
  EXPECT_NE(log.to_json(0).find("\"q1.\""), std::string::npos);
}

TEST(SlowQueryLog, ClearDropsEntriesAndReopensAdmission) {
  SlowQueryLog log(2);
  log.maybe_add(make_entry(100, "a."));
  log.maybe_add(make_entry(300, "b."));
  EXPECT_FALSE(log.would_admit(50));  // full: floor is 100
  log.clear();
  EXPECT_TRUE(log.entries().empty());
  EXPECT_TRUE(log.would_admit(1));  // threshold back to zero
  log.maybe_add(make_entry(10, "after."));
  const auto entries = log.entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].qname, "after.");
}

TEST(SlowQueryLog, ConcurrentAddsStayBounded) {
  SlowQueryLog log(8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&log, t]() {
      for (int i = 0; i < 5'000; ++i) {
        log.maybe_add(make_entry(
            static_cast<std::uint64_t>(t * 5'000 + i + 1), "q."));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto entries = log.entries();
  ASSERT_EQ(entries.size(), 8u);
  // The global maximum always survives.
  EXPECT_EQ(entries[0].total_ns, 20'000u);
}

}  // namespace
}  // namespace dnsnoise::obs
