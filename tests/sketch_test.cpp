// Streaming sketch primitives (obs/sketch): Space-Saving invariants and
// exact top-K recall on Zipf(1.0) traffic, HyperLogLog error bound and
// CRDT merge, the sliding-window ring, the live disposable classifier,
// and the byte-stable dnsnoise-traffic-v1 export with its deterministic
// cross-shard merge.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dns/message.h"
#include "obs/metrics.h"
#include "obs/sketch/hll.h"
#include "obs/sketch/spacesaving.h"
#include "obs/sketch/traffic_sketch.h"
#include "resolver/tap.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace dnsnoise {
namespace {

using obs::HllSketch;
using obs::SpaceSavingSketch;
using obs::TrafficHeavyHitter;
using obs::TrafficSketch;
using obs::TrafficSketchConfig;
using obs::TrafficSketchPlane;
using obs::TrafficSnapshot;

// --- Space-Saving -----------------------------------------------------------

TEST(SpaceSaving, ExactBelowCapacity) {
  SpaceSavingSketch sketch(8);
  for (std::uint32_t key = 0; key < 4; ++key) {
    for (std::uint32_t i = 0; i <= key; ++i) sketch.offer(key);
  }
  EXPECT_EQ(sketch.size(), 4u);
  EXPECT_EQ(sketch.offered(), 1u + 2 + 3 + 4);
  for (const SpaceSavingSketch::Counter& counter : sketch.counters()) {
    EXPECT_EQ(counter.count, counter.key + 1u);
    EXPECT_EQ(counter.error, 0u);  // never evicted: exact
  }
}

TEST(SpaceSaving, InvariantsHoldUnderEviction) {
  // 4 counters, 20 distinct keys: constant churn.  The classic guarantees
  // must survive: counts sum to the stream length, and for every
  // monitored key count - error <= true frequency <= count.
  SpaceSavingSketch sketch(4);
  std::map<std::uint32_t, std::uint64_t> truth;
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    // Skewed synthetic stream: low keys dominate.
    const auto key = static_cast<std::uint32_t>(
        rng.below(rng.below(19) + 1));
    ++truth[key];
    sketch.offer(key);
  }
  std::uint64_t total = 0;
  for (const SpaceSavingSketch::Counter& counter : sketch.counters()) {
    total += counter.count;
    EXPECT_LE(truth[counter.key], counter.count) << counter.key;
    EXPECT_GE(truth[counter.key], counter.count - counter.error)
        << counter.key;
  }
  EXPECT_EQ(total, sketch.offered());
  EXPECT_EQ(sketch.offered(), 10'000u);
}

TEST(SpaceSaving, ExactTopKRecallOnZipfTraffic) {
  // The paper-shaped workload: Zipf(1.0) ranks.  With counters >> K the
  // monitored set must contain the true top-K exactly, and rank them in
  // the true order — this is the property the /traffic top table rides on.
  constexpr std::size_t kKeys = 10'000;
  constexpr std::size_t kStream = 200'000;
  constexpr std::size_t kTopK = 16;
  ZipfSampler zipf(kKeys, 1.0);
  Rng rng(0x5eedu);
  SpaceSavingSketch sketch(512);
  std::vector<std::uint64_t> truth(kKeys, 0);
  for (std::size_t i = 0; i < kStream; ++i) {
    const auto key = static_cast<std::uint32_t>(zipf.sample(rng));
    ++truth[key];
    sketch.offer(key);
  }

  const auto rank = [](std::vector<std::pair<std::uint64_t, std::uint32_t>>&
                           keyed) {
    std::sort(keyed.begin(), keyed.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
  };
  std::vector<std::pair<std::uint64_t, std::uint32_t>> true_ranked;
  for (std::uint32_t key = 0; key < kKeys; ++key) {
    if (truth[key] > 0) true_ranked.emplace_back(truth[key], key);
  }
  rank(true_ranked);
  std::vector<std::pair<std::uint64_t, std::uint32_t>> sketch_ranked;
  for (const SpaceSavingSketch::Counter& counter : sketch.counters()) {
    sketch_ranked.emplace_back(counter.count, counter.key);
  }
  rank(sketch_ranked);

  ASSERT_GE(sketch_ranked.size(), kTopK);
  for (std::size_t i = 0; i < kTopK; ++i) {
    EXPECT_EQ(sketch_ranked[i].second, true_ranked[i].second) << "rank " << i;
    // The head of a skewed stream is monitored from early on and never
    // evicted, so its counts are not just bounded but exact.
    EXPECT_EQ(sketch_ranked[i].first, true_ranked[i].first) << "rank " << i;
  }
}

TEST(SpaceSaving, WeightedOfferEqualsRepeatedUnitOffers) {
  // offer(key, w) must be interchangeable with w consecutive offer(key)
  // calls — the traffic sketch relies on this to fold exact per-name
  // deltas at flush boundaries without changing what the sketch says.
  SpaceSavingSketch unit(4);
  SpaceSavingSketch weighted(4);
  Rng rng(11);
  for (int round = 0; round < 2'000; ++round) {
    const auto key = static_cast<std::uint32_t>(rng.below(rng.below(19) + 1));
    const std::uint64_t weight = rng.below(5) + 1;
    for (std::uint64_t i = 0; i < weight; ++i) unit.offer(key);
    weighted.offer(key, weight);
  }
  EXPECT_EQ(unit.offered(), weighted.offered());
  ASSERT_EQ(unit.size(), weighted.size());
  const auto sorted = [](const SpaceSavingSketch& sketch) {
    auto counters = sketch.counters();
    std::sort(counters.begin(), counters.end(),
              [](const auto& a, const auto& b) { return a.key < b.key; });
    return counters;
  };
  const auto lhs = sorted(unit);
  const auto rhs = sorted(weighted);
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    EXPECT_EQ(lhs[i].key, rhs[i].key);
    EXPECT_EQ(lhs[i].count, rhs[i].count);
    EXPECT_EQ(lhs[i].error, rhs[i].error);
  }
  weighted.offer(7, 0);  // zero weight is a no-op, not an insertion
  EXPECT_EQ(weighted.offered(), unit.offered());
}

TEST(SpaceSaving, ClearResets) {
  SpaceSavingSketch sketch(2);
  sketch.offer(1);
  sketch.offer(2);
  sketch.offer(3);
  sketch.clear();
  EXPECT_EQ(sketch.size(), 0u);
  EXPECT_EQ(sketch.offered(), 0u);
  sketch.offer(9);
  ASSERT_EQ(sketch.size(), 1u);
  EXPECT_EQ(sketch.counters()[0].error, 0u);  // no stale takeover state
}

// --- HyperLogLog ------------------------------------------------------------

TEST(Hll, ErrorWithinTheoreticalBoundOnSeededStreams) {
  // 3 sigma of the standard error 1.04/sqrt(4096) ~= 4.9%; seeded streams
  // make the assertion deterministic.
  for (const std::size_t n :
       {std::size_t{100}, std::size_t{1'000}, std::size_t{20'000},
        std::size_t{200'000}}) {
    HllSketch sketch;
    for (std::size_t i = 0; i < n; ++i) {
      sketch.add_hash(mix64(0x9e3779b97f4a7c15ULL + i));
    }
    const double estimate = sketch.estimate();
    const double relative_error =
        std::abs(estimate - static_cast<double>(n)) / static_cast<double>(n);
    EXPECT_LE(relative_error, 3.0 * HllSketch::kStandardError) << "n=" << n;
  }
}

TEST(Hll, DuplicatesDoNotInflate) {
  HllSketch sketch;
  for (int round = 0; round < 10; ++round) {
    for (std::uint64_t i = 0; i < 1000; ++i) sketch.add_hash(mix64(i));
  }
  const double estimate = sketch.estimate();
  EXPECT_LE(std::abs(estimate - 1000.0) / 1000.0,
            3.0 * HllSketch::kStandardError);
}

TEST(Hll, MergeEqualsUnionStream) {
  // Register-wise max is a CRDT: merging overlapping shards must equal
  // one sketch over the union, bit for bit (same estimate).
  HllSketch whole;
  HllSketch parts[4];
  for (std::uint64_t i = 0; i < 40'000; ++i) {
    const std::uint64_t hash = mix64(i * 2654435761ULL);
    whole.add_hash(hash);
    parts[i % 4].add_hash(hash);
    parts[(i + 1) % 4].add_hash(hash);  // overlap between shards
  }
  HllSketch merged;
  EXPECT_TRUE(merged.empty());
  for (const HllSketch& part : parts) merged.merge_from(part);
  EXPECT_FALSE(merged.empty());
  EXPECT_EQ(merged.estimate(), whole.estimate());
}

TEST(Hll, ClearEmpties) {
  HllSketch sketch;
  sketch.add_hash(mix64(42));
  EXPECT_FALSE(sketch.empty());
  sketch.clear();
  EXPECT_TRUE(sketch.empty());
  EXPECT_EQ(sketch.estimate(), 0.0);
}

// --- TrafficSketch / plane --------------------------------------------------

/// Feeds one below-direction answer event into `sketch`.
void feed(TrafficSketch& sketch, SimTime ts, std::uint64_t client,
          const std::string& qname, RCode rcode = RCode::NoError,
          TapDirection direction = TapDirection::kBelow) {
  TapEvent event;
  event.ts = ts;
  event.direction = direction;
  event.client_id = client;
  event.rcode = rcode;
  ASSERT_TRUE(event.question.name.assign(qname));
  sketch.on_tap_batch(TapBatch({&event, 1}, {}));
}

TEST(TrafficPlane, CountsSharesAndHeavyHitters) {
  TrafficSketchConfig config;
  config.top_k = 4;
  TrafficSketchPlane plane(config);
  plane.set_disposable_zones({"noise.tracker.example"});
  plane.ensure_shards(1);
  TrafficSketch& shard = plane.shard(0);
  for (int i = 0; i < 6; ++i) {
    feed(shard, 10 + i, 1, "q" + std::to_string(i) + ".noise.tracker.example");
  }
  feed(shard, 20, 2, "www.stable.example");
  feed(shard, 21, 2, "www.stable.example");
  feed(shard, 22, 3, "missing.stable.example", RCode::NXDomain);
  // Above-direction events are the cache-miss echo, never counted.
  feed(shard, 23, 0, "www.stable.example", RCode::NoError,
       TapDirection::kAbove);

  const TrafficSnapshot snap = plane.snapshot();
  EXPECT_EQ(snap.queries, 9u);
  EXPECT_EQ(snap.disposable, 6u);  // matched at the zone, 2 labels deep
  EXPECT_EQ(snap.nxdomain, 1u);
  EXPECT_EQ(snap.new_names, 8u);  // www.stable.example repeated once
  EXPECT_DOUBLE_EQ(snap.disposable_share(), 6.0 / 9.0);
  EXPECT_DOUBLE_EQ(snap.nxdomain_share(), 1.0 / 9.0);
  EXPECT_EQ(snap.classifier_zones, 1u);
  ASSERT_FALSE(snap.top_slds.empty());
  // SLD table folds every qX.noise.tracker.example into one registrable
  // domain ("example" is not a public suffix -> SLD = tracker.example...
  // actually nld_view(suffix+1)); the heavy hitter must dominate.
  EXPECT_GE(snap.top_slds[0].count, 6u);
  ASSERT_LE(snap.top_qnames.size(), 4u);  // top_k caps the export
  EXPECT_EQ(snap.top_qnames[0].name, "www.stable.example");
  EXPECT_EQ(snap.top_qnames[0].count, 2u);
}

TEST(TrafficPlane, ClassifierMatchesAnySuffixLevelAndClears) {
  TrafficSketchPlane plane;
  plane.set_disposable_zones({"deep.zone.example.com"});
  plane.ensure_shards(1);
  TrafficSketch& shard = plane.shard(0);
  feed(shard, 1, 1, "a.b.deep.zone.example.com");  // below the zone: match
  feed(shard, 2, 1, "deep.zone.example.com");      // the zone itself: match
  feed(shard, 3, 1, "zone.example.com");           // above the zone: miss
  feed(shard, 4, 1, "other.example.com");          // unrelated: miss
  EXPECT_EQ(plane.snapshot().disposable, 2u);

  plane.set_disposable_zones({});
  EXPECT_EQ(plane.classifier_zone_count(), 0u);
  feed(shard, 5, 1, "a.b.deep.zone.example.com");  // classifier now empty
  EXPECT_EQ(plane.snapshot().disposable, 2u);
}

TEST(TrafficPlane, WindowRingEvictsOldIntervals) {
  TrafficSketchConfig config;
  config.window_slots = 4;
  config.interval_seconds = 10;
  TrafficSketchPlane plane(config);
  plane.ensure_shards(1);
  TrafficSketch& shard = plane.shard(0);
  // 8 intervals of one query each; the ring keeps only the newest 4.
  for (SimTime interval = 0; interval < 8; ++interval) {
    feed(shard, interval * 10 + 5, 1, "w.example");
  }
  const TrafficSnapshot snap = plane.snapshot();
  ASSERT_EQ(snap.window.size(), 4u);
  EXPECT_EQ(snap.window.front().start_ts, 40);  // oldest surviving interval
  EXPECT_EQ(snap.window.back().start_ts, 70);
  for (const obs::TrafficInterval& interval : snap.window) {
    EXPECT_EQ(interval.queries, 1u);
  }
  EXPECT_EQ(snap.queries, 8u);  // totals keep the full-day view
}

TEST(TrafficPlane, ShardMergeIsDeterministicAndSumsByText) {
  // Two planes, three shards each, same per-shard streams: the merged
  // export must be byte-identical, and a name split across shards must
  // merge by summed count (never by table-scoped NameId).
  const auto build = [] {
    TrafficSketchConfig config;
    config.top_k = 8;
    auto plane = std::make_unique<TrafficSketchPlane>(config);
    plane->set_disposable_zones({"hot.example"});
    plane->ensure_shards(3);
    for (std::size_t s = 0; s < 3; ++s) {
      TrafficSketch& shard = plane->shard(s);
      // Shared heavy hitter, interned at a different NameId per shard
      // (distinct warm-up names force different intern orders).
      feed(shard, 1, s, "warm" + std::to_string(s) + ".example");
      for (int i = 0; i < 3; ++i) {
        feed(shard, 2 + i, 100 + s, "x.hot.example");
      }
    }
    return plane;
  };
  const auto a = build();
  const auto b = build();
  const std::string json = a->to_json();
  EXPECT_EQ(json, b->to_json());
  EXPECT_EQ(json, a->to_json());  // export itself is stable

  const TrafficSnapshot snap = a->snapshot();
  EXPECT_EQ(snap.queries, 12u);
  EXPECT_EQ(snap.disposable, 9u);
  ASSERT_FALSE(snap.top_qnames.empty());
  EXPECT_EQ(snap.top_qnames[0].name, "x.hot.example");
  EXPECT_EQ(snap.top_qnames[0].count, 9u);  // 3 shards x 3, summed by text
  // Ties rank by name ascending for a total order.
  ASSERT_GE(snap.top_qnames.size(), 4u);
  EXPECT_EQ(snap.top_qnames[1].name, "warm0.example");
  EXPECT_EQ(snap.top_qnames[2].name, "warm1.example");
  EXPECT_EQ(snap.top_qnames[3].name, "warm2.example");
}

TEST(TrafficPlane, HookPathMatchesTapPathByteForByte) {
  // The production feed (bind_sources + observe + flush_pending) and the
  // generic tap feed must serve byte-identical exports for the same event
  // stream — same intern order, same classifier verdicts, same window.
  // The stream wraps the 256-entry ring several times.
  TrafficSketchConfig config;
  config.top_k = 8;
  config.interval_seconds = 10;
  Rng rng(21);
  ZipfSampler zipf(40, 1.0);
  std::vector<std::string> pool;
  for (int i = 0; i < 40; ++i) {
    pool.push_back(i % 3 == 0
                       ? "n" + std::to_string(i) + ".avqs.example"
                       : "host" + std::to_string(i) + ".stable.example");
  }
  struct Event {
    SimTime ts;
    std::uint64_t client;
    std::size_t name;
    RCode rcode;
  };
  std::vector<Event> stream;
  for (int i = 0; i < 700; ++i) {
    stream.push_back({static_cast<SimTime>(i / 3), rng.below(16) + 1,
                      zipf.sample(rng),
                      i % 7 == 0 ? RCode::NXDomain : RCode::NoError});
  }

  TrafficSketchPlane tap_plane(config);
  tap_plane.set_disposable_zones({"avqs.example"});
  tap_plane.ensure_shards(1);
  for (const Event& event : stream) {
    feed(tap_plane.shard(0), event.ts, event.client, pool[event.name],
         event.rcode);
  }

  TrafficSketchPlane hook_plane(config);
  hook_plane.set_disposable_zones({"avqs.example"});
  hook_plane.ensure_shards(1);
  TrafficSketch& hook_shard = hook_plane.shard(0);
  NameTable source;
  std::vector<NameId> ids;
  for (const std::string& name : pool) ids.push_back(source.intern(name));
  hook_shard.bind_sources({&source});
  for (const Event& event : stream) {
    hook_shard.observe(0, ids[event.name], event.client, event.rcode,
                       event.ts);
  }
  hook_shard.flush_pending();

  EXPECT_EQ(tap_plane.to_json(), hook_plane.to_json());
}

TEST(TrafficPlane, RebindResolvesIdsThroughTheNewTables) {
  // NameIds are table-scoped: after rebinding (a fresh cluster's caches,
  // next simulated day) the same raw id must resolve through the *new*
  // table, never a stale cached translation.
  TrafficSketchPlane plane;
  plane.ensure_shards(1);
  TrafficSketch& shard = plane.shard(0);
  NameTable first_table;
  const NameId first = first_table.intern("first-day.example");
  shard.bind_sources({&first_table});
  shard.observe(0, first, 1, RCode::NoError, 1);
  shard.flush_pending();

  NameTable second_table;
  const NameId second = second_table.intern("second-day.example");
  ASSERT_EQ(first, second);  // same raw id, different meaning
  shard.bind_sources({&second_table});
  shard.observe(0, second, 2, RCode::NoError, 2);
  shard.flush_pending();

  const TrafficSnapshot snap = plane.snapshot();
  EXPECT_EQ(snap.queries, 2u);
  std::vector<std::string> names;
  for (const TrafficHeavyHitter& hitter : snap.top_qnames) {
    names.push_back(hitter.name);
    EXPECT_EQ(hitter.count, 1u);
  }
  EXPECT_EQ(names, (std::vector<std::string>{"first-day.example",
                                             "second-day.example"}));
}

TEST(TrafficPlane, ScrapesNeverPerturbLaterExports) {
  // collect_into overlays pending deltas onto a *copy* of the
  // Space-Saving state, so writer-side state stays a pure function of
  // the event stream: a run scraped mid-stream must end with the same
  // export as an unscraped run, and consecutive quiesced scrapes must be
  // byte-identical.
  const auto run = [](bool scrape_midway) {
    TrafficSketchConfig config;
    config.counters = 8;  // small: constant Space-Saving churn
    auto plane = std::make_unique<TrafficSketchPlane>(config);
    plane->ensure_shards(1);
    TrafficSketch& shard = plane->shard(0);
    NameTable source;
    std::vector<NameId> ids;
    for (int i = 0; i < 64; ++i) {
      ids.push_back(source.intern("n" + std::to_string(i) + ".example"));
    }
    shard.bind_sources({&source});
    Rng rng(33);
    for (int i = 0; i < 1'000; ++i) {
      shard.observe(0, ids[rng.below(rng.below(63) + 1)], 1, RCode::NoError,
                    static_cast<SimTime>(i));
      if (scrape_midway && i % 250 == 249) plane->to_json();
    }
    shard.flush_pending();
    return plane->to_json();
  };
  const std::string undisturbed = run(false);
  EXPECT_EQ(undisturbed, run(true));
}

TEST(TrafficPlane, EmptyPlaneExportsZeroSharesNotNull) {
  TrafficSketchPlane plane;
  const TrafficSnapshot snap = plane.snapshot();
  EXPECT_EQ(snap.queries, 0u);
  EXPECT_DOUBLE_EQ(snap.disposable_share(), 0.0);
  const std::string json = plane.to_json();
  EXPECT_NE(json.find("\"schema\": \"dnsnoise-traffic-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"disposable_share\": 0"), std::string::npos);
  EXPECT_EQ(json.find("null"), std::string::npos);
  EXPECT_NE(json.find("\"top_slds\": []"), std::string::npos);
  EXPECT_NE(json.find("\"window\": []"), std::string::npos);
}

TEST(TrafficPlane, PublishGaugesLandsInRegistry) {
  obs::MetricsRegistry registry;
  TrafficSketchPlane plane;
  plane.set_disposable_zones({"hot.example"});
  plane.ensure_shards(1);
  feed(plane.shard(0), 1, 1, "a.hot.example");
  feed(plane.shard(0), 2, 2, "b.cold.example", RCode::NXDomain);
  plane.publish_gauges(registry);
  const obs::MetricsSnapshot snap = registry.snapshot();
  const obs::MetricSample* queries = snap.find("traffic.queries");
  ASSERT_NE(queries, nullptr);
  EXPECT_EQ(queries->value, 2.0);
  const obs::MetricSample* share = snap.find("traffic.disposable_share");
  ASSERT_NE(share, nullptr);
  EXPECT_DOUBLE_EQ(share->value, 0.5);
  EXPECT_NE(snap.find("traffic.nxdomain_share"), nullptr);
  EXPECT_NE(snap.find("traffic.distinct_qnames"), nullptr);
  EXPECT_NE(snap.find("traffic.distinct_clients"), nullptr);
  EXPECT_NE(snap.find("traffic.classifier_zones"), nullptr);
}

}  // namespace
}  // namespace dnsnoise
