// Unit tests for the event-tracing layer (obs/trace, obs/trace_export):
// ring-buffer semantics, deterministic sampling, collector snapshot
// ordering, and the dnsnoise-trace-v1 exporter's stability contract.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/trace.h"
#include "obs/trace_export.h"

namespace dnsnoise::obs {
namespace {

TEST(TraceStream, RecordsSpansAndInstantsInOrder) {
  TraceStream stream(TraceStage::kCluster, 3, 16);
  stream.span(TraceOp::kClusterQuery, 100, 50, "a.example", 1,
              TraceOutcome::kHit, 7);
  stream.instant(TraceOp::kMinerDecolor, 200, "b.example", 9);

  EXPECT_EQ(stream.recorded(), 2u);
  EXPECT_EQ(stream.dropped(), 0u);
  const std::vector<TraceEvent> events = stream.drain_ordered();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].op, TraceOp::kClusterQuery);
  EXPECT_EQ(events[0].ts_ns, 100u);
  EXPECT_EQ(events[0].dur_ns, 50u);
  EXPECT_STREQ(events[0].label, "a.example");
  EXPECT_EQ(events[0].qtype, 1u);
  EXPECT_EQ(events[0].outcome, TraceOutcome::kHit);
  EXPECT_EQ(events[0].id, 7u);
  EXPECT_FALSE(events[0].instant);
  EXPECT_TRUE(events[1].instant);
  EXPECT_EQ(events[1].dur_ns, 0u);
  EXPECT_EQ(events[1].id, 9u);
}

TEST(TraceStream, RingOverwritesOldestAndCountsDrops) {
  TraceStream stream(TraceStage::kMiner, 0, 4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    stream.instant(TraceOp::kMinerGroupClassify, i);
  }
  EXPECT_EQ(stream.recorded(), 10u);
  EXPECT_EQ(stream.dropped(), 6u);
  const std::vector<TraceEvent> events = stream.drain_ordered();
  ASSERT_EQ(events.size(), 4u);
  // Oldest surviving first: timestamps 6, 7, 8, 9.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ts_ns, 6 + i);
  }
}

TEST(TraceStream, LabelTruncatesSafely) {
  TraceStream stream(TraceStage::kWorkload, 0, 4);
  const std::string long_name(200, 'x');
  stream.span(TraceOp::kWorkloadSample, 0, 1, long_name);
  const std::vector<TraceEvent> events = stream.drain_ordered();
  ASSERT_EQ(events.size(), 1u);
  const std::string label = events[0].label;
  EXPECT_EQ(label.size(), sizeof(TraceEvent{}.label) - 1);
  EXPECT_EQ(label, long_name.substr(0, label.size()));
}

TEST(TraceSampler, FiresOncePerPeriodDeterministically) {
  TraceSampler a(8, 42);
  TraceSampler b(8, 42);
  int fired = 0;
  for (int i = 0; i < 800; ++i) {
    const bool fa = a.sample();
    ASSERT_EQ(fa, b.sample()) << "same seed must fire identically at " << i;
    fired += fa ? 1 : 0;
  }
  EXPECT_EQ(fired, 100);  // exactly 1 in 8
}

TEST(TraceSampler, SeedShiftsThePhase) {
  // Find two seeds with different phases (mix64 % 8 differs).
  TraceSampler a(8, 1);
  TraceSampler b(8, 2);
  std::vector<bool> fa;
  std::vector<bool> fb;
  for (int i = 0; i < 8; ++i) {
    fa.push_back(a.sample());
    fb.push_back(b.sample());
  }
  EXPECT_NE(fa, fb);
}

TEST(TraceSampler, EveryOneAlwaysFires) {
  TraceSampler sampler(1, 123);
  for (int i = 0; i < 16; ++i) EXPECT_TRUE(sampler.sample());
}

TEST(TraceCollector, StreamsAreStableAndSnapshotIsSorted) {
  TraceConfig config;
  config.ring_capacity = 8;
  TraceCollector collector(config);
  TraceStream& miner = collector.stream(TraceStage::kMiner, 0);
  TraceStream& cluster1 = collector.stream(TraceStage::kCluster, 1);
  TraceStream& cluster0 = collector.stream(TraceStage::kCluster, 0);
  EXPECT_EQ(&collector.stream(TraceStage::kMiner, 0), &miner);
  EXPECT_EQ(collector.stream_count(), 3u);

  miner.instant(TraceOp::kMinerDecolor, 5);
  cluster1.span(TraceOp::kClusterQuery, 1, 1);
  cluster0.span(TraceOp::kClusterQuery, 2, 1);

  const TraceSnapshot snapshot = collector.snapshot();
  ASSERT_EQ(snapshot.events.size(), 3u);
  // (stage, shard) order: cluster/0, cluster/1, miner/0.
  EXPECT_EQ(snapshot.events[0].stage, TraceStage::kCluster);
  EXPECT_EQ(snapshot.events[0].shard, 0u);
  EXPECT_EQ(snapshot.events[1].stage, TraceStage::kCluster);
  EXPECT_EQ(snapshot.events[1].shard, 1u);
  EXPECT_EQ(snapshot.events[2].stage, TraceStage::kMiner);
  EXPECT_EQ(snapshot.dropped, 0u);
}

TEST(TraceSpan, NullStreamRecordsNothing) {
  TraceSpan span(nullptr, nullptr, TraceOp::kMinerMine);
  span.annotate("ignored", 1, TraceOutcome::kHit, 3);
  span.stop();  // must be safe
}

TEST(TraceSpan, RecordsOneSpanWithAnnotations) {
  TraceCollector collector;
  TraceStream& stream = collector.stream(TraceStage::kMiner, 0);
  {
    TraceSpan span(&stream, &collector, TraceOp::kMinerZone);
    span.annotate("ads.example", 0, TraceOutcome::kNone, 2);
  }
  const std::vector<TraceEvent> events = stream.drain_ordered();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].op, TraceOp::kMinerZone);
  EXPECT_STREQ(events[0].label, "ads.example");
  EXPECT_EQ(events[0].id, 2u);
  EXPECT_FALSE(events[0].instant);
}

TEST(TraceSpan, LabelSurvivesTheAnnotationString) {
  // annotate must copy: the span records at scope exit, typically after a
  // caller-local label string has been destroyed (regression test for the
  // miner.zone use-after-free).
  TraceCollector collector;
  TraceStream& stream = collector.stream(TraceStage::kMiner, 0);
  {
    TraceSpan span(&stream, &collector, TraceOp::kMinerZone);
    {
      // Long enough to defeat SSO so the old string_view would dangle
      // into freed heap memory.
      std::string transient(38, 'z');
      span.annotate(transient, 0, TraceOutcome::kNone, 7);
    }
  }
  const std::vector<TraceEvent> events = stream.drain_ordered();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string_view(events[0].label), std::string(38, 'z'));
  EXPECT_EQ(events[0].id, 7u);
}

TEST(TraceNames, AllOpsAndStagesHaveNames) {
  for (int op = 0; op <= static_cast<int>(TraceOp::kMinerDecolor); ++op) {
    EXPECT_FALSE(trace_op_name(static_cast<TraceOp>(op)).empty()) << op;
  }
  EXPECT_EQ(trace_stage_name(TraceStage::kWorkload), "workload");
  EXPECT_EQ(trace_stage_name(TraceStage::kCluster), "cluster");
  EXPECT_EQ(trace_stage_name(TraceStage::kEngine), "engine");
  EXPECT_EQ(trace_stage_name(TraceStage::kMiner), "miner");
  EXPECT_EQ(trace_op_name(TraceOp::kClusterQuery), "cluster.query");
  EXPECT_EQ(trace_op_name(TraceOp::kMinerDecolor), "miner.decolor");
}

/// A small snapshot exercising every serialization branch: span with all
/// annotations, span with none, and an instant.
TraceSnapshot exporter_fixture() {
  TraceCollector collector;
  collector.stream(TraceStage::kCluster, 1)
      .span(TraceOp::kClusterQuery, 1'234'567, 2'500, "x.ads.example", 1,
            TraceOutcome::kMiss, 42);
  collector.stream(TraceStage::kEngine, 0)
      .span(TraceOp::kEngineMerge, 5'000'000, 1'000'000);
  collector.stream(TraceStage::kMiner, 0)
      .instant(TraceOp::kMinerDecolor, 9'000'000, "ads.example", 17);
  return collector.snapshot();
}

TEST(TraceExport, EmitsChromeTraceEventFields) {
  const std::string json = to_json(exporter_fixture(), {{"run", "test"}});

  EXPECT_NE(json.find("\"schema\": \"dnsnoise-trace-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  // Caller meta merged with the built-in keys.
  EXPECT_NE(json.find("\"run\": \"test\""), std::string::npos);
  EXPECT_NE(json.find("\"sample_every_n\": \"64\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\": \"0\""), std::string::npos);
  // Lane naming metadata: pid = stage, tid = shard.
  EXPECT_NE(json.find("{\"name\": \"process_name\", \"ph\": \"M\", "
                      "\"pid\": 2, \"tid\": 0, "
                      "\"args\": {\"name\": \"cluster\"}}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"name\": \"thread_name\", \"ph\": \"M\", "
                      "\"pid\": 2, \"tid\": 1, "
                      "\"args\": {\"name\": \"shard1\"}}"),
            std::string::npos);
  // Complete span: ph X, microsecond ts/dur with 3 decimals, fixed arg
  // key order label, qtype, outcome, id.
  EXPECT_NE(json.find("{\"name\": \"cluster.query\", \"cat\": \"cluster\", "
                      "\"ph\": \"X\", \"ts\": 1234.567, \"dur\": 2.500, "
                      "\"pid\": 2, \"tid\": 1, \"args\": "
                      "{\"label\": \"x.ads.example\", \"qtype\": 1, "
                      "\"outcome\": \"miss\", \"id\": 42}}"),
            std::string::npos);
  // Annotation-free span omits args entirely.
  EXPECT_NE(json.find("{\"name\": \"engine.merge\", \"cat\": \"engine\", "
                      "\"ph\": \"X\", \"ts\": 5000.000, \"dur\": 1000.000, "
                      "\"pid\": 3, \"tid\": 0}"),
            std::string::npos);
  // Instant: ph i with thread scope, no dur.
  EXPECT_NE(json.find("{\"name\": \"miner.decolor\", \"cat\": \"miner\", "
                      "\"ph\": \"i\", \"s\": \"t\", \"ts\": 9000.000, "
                      "\"pid\": 4, \"tid\": 0, \"args\": "
                      "{\"label\": \"ads.example\", \"id\": 17}}"),
            std::string::npos);
}

TEST(TraceExport, SerializationIsByteStable) {
  const TraceSnapshot snapshot = exporter_fixture();
  EXPECT_EQ(to_json(snapshot), to_json(snapshot));
  EXPECT_EQ(to_text_summary(snapshot), to_text_summary(snapshot));
}

TEST(TraceExport, ReportsDroppedEvents) {
  TraceConfig config;
  config.ring_capacity = 2;
  TraceCollector collector(config);
  TraceStream& stream = collector.stream(TraceStage::kMiner, 0);
  for (int i = 0; i < 5; ++i) {
    stream.instant(TraceOp::kMinerGroupClassify, i);
  }
  const TraceSnapshot snapshot = collector.snapshot();
  EXPECT_EQ(snapshot.dropped, 3u);
  EXPECT_NE(to_json(snapshot).find("\"dropped_events\": \"3\""),
            std::string::npos);
}

TEST(TraceExport, TextSummaryCoversOpsAndSlowSpans) {
  const std::string text = to_text_summary(exporter_fixture(), 5);
  EXPECT_NE(text.find("[cluster]"), std::string::npos);
  EXPECT_NE(text.find("[engine]"), std::string::npos);
  EXPECT_NE(text.find("cluster.query"), std::string::npos);
  EXPECT_NE(text.find("1 instants"), std::string::npos);
  // The slowest span is the 1 ms merge.
  const std::size_t top = text.find("slowest spans:");
  ASSERT_NE(top, std::string::npos);
  EXPECT_NE(text.find("engine.merge", top), std::string::npos);
  EXPECT_LT(text.find("engine.merge", top), text.find("cluster.query", top));
}

}  // namespace
}  // namespace dnsnoise::obs
