#include "features/domain_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/rng.h"

namespace dnsnoise {
namespace {

TEST(DomainTreeTest, InsertMarksOnlyExactNodeBlack) {
  DomainNameTree tree;
  tree.insert(DomainName("a.example.com"));
  EXPECT_EQ(tree.black_count(), 1u);
  EXPECT_TRUE(tree.find(DomainName("a.example.com"))->black);
  EXPECT_FALSE(tree.find(DomainName("example.com"))->black);
  EXPECT_FALSE(tree.find(DomainName("com"))->black);
}

TEST(DomainTreeTest, DuplicateInsertIsIdempotent) {
  DomainNameTree tree;
  tree.insert(DomainName("a.example.com"));
  tree.insert(DomainName("a.example.com"));
  EXPECT_EQ(tree.black_count(), 1u);
}

TEST(DomainTreeTest, NodeCountAndSharing) {
  DomainNameTree tree;
  tree.insert(DomainName("a.example.com"));
  tree.insert(DomainName("b.example.com"));
  // root + com + example + a + b
  EXPECT_EQ(tree.node_count(), 5u);
}

TEST(DomainTreeTest, FindMissing) {
  DomainNameTree tree;
  tree.insert(DomainName("a.example.com"));
  EXPECT_EQ(tree.find(DomainName("z.example.com")), nullptr);
  EXPECT_EQ(tree.find(DomainName("a.example.org")), nullptr);
}

TEST(DomainTreeTest, FullNameReconstruction) {
  DomainNameTree tree;
  const auto& node = tree.insert(DomainName("i.1.a.example.com"));
  EXPECT_EQ(DomainNameTree::full_name(node), "i.1.a.example.com");
  EXPECT_EQ(DomainNameTree::full_name(tree.root()), "");
  EXPECT_EQ(DomainNameTree::full_name(*tree.find(DomainName("com"))), "com");
}

TEST(DomainTreeTest, DepthIsLabelCount) {
  DomainNameTree tree;
  const auto& node = tree.insert(DomainName("i.1.a.example.com"));
  EXPECT_EQ(node.depth, 5u);
  EXPECT_EQ(tree.find(DomainName("example.com"))->depth, 2u);
  EXPECT_EQ(tree.root().depth, 0u);
}

DomainNameTree paper_example_tree() {
  // The exact example of the paper's Fig. 8.
  DomainNameTree tree;
  tree.insert(DomainName("a.example.com"));
  tree.insert(DomainName("i.1.a.example.com"));
  tree.insert(DomainName("2.a.example.com"));
  tree.insert(DomainName("3.a.example.com"));
  tree.insert(DomainName("4.b.example.com"));
  tree.insert(DomainName("c.example.com"));
  return tree;
}

TEST(DomainTreeTest, PaperFig8Groups) {
  DomainNameTree tree = paper_example_tree();
  auto* zone = tree.find(DomainName("example.com"));
  ASSERT_NE(zone, nullptr);
  const auto groups = tree.black_descendants_by_depth(*zone);
  // G3 = {a, c}, G4 = {2.a, 3.a, 4.b}, G5 = {i.1.a}.
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups.at(3).size(), 2u);
  EXPECT_EQ(groups.at(4).size(), 3u);
  EXPECT_EQ(groups.at(5).size(), 1u);
  std::vector<std::string> g3;
  for (const auto* node : groups.at(3)) {
    g3.push_back(DomainNameTree::full_name(*node));
  }
  std::sort(g3.begin(), g3.end());
  EXPECT_EQ(g3, (std::vector<std::string>{"a.example.com", "c.example.com"}));
}

TEST(DomainTreeTest, DecolorMatchesPaperFig9) {
  DomainNameTree tree = paper_example_tree();
  auto* zone = tree.find(DomainName("example.com"));
  auto groups = tree.black_descendants_by_depth(*zone);
  // Decolor G3 (a.example.com, c.example.com) as the paper's example does.
  for (auto* node : groups.at(3)) tree.decolor(*node);
  EXPECT_EQ(tree.black_count(), 4u);
  const auto after = tree.black_descendants_by_depth(*zone);
  EXPECT_FALSE(after.contains(3));
  EXPECT_EQ(after.at(4).size(), 3u);
  // Decoloring twice is harmless.
  tree.decolor(*tree.find(DomainName("a.example.com")));
  EXPECT_EQ(tree.black_count(), 4u);
}

TEST(DomainTreeTest, HasBlackDescendant) {
  DomainNameTree tree = paper_example_tree();
  EXPECT_TRUE(DomainNameTree::has_black_descendant(
      *tree.find(DomainName("example.com"))));
  EXPECT_TRUE(DomainNameTree::has_black_descendant(
      *tree.find(DomainName("a.example.com"))));
  // c.example.com is black itself but has no black *descendants*.
  EXPECT_FALSE(DomainNameTree::has_black_descendant(
      *tree.find(DomainName("c.example.com"))));
}

TEST(DomainTreeTest, Effective2ldNodes) {
  DomainNameTree tree;
  tree.insert(DomainName("www.example.com"));
  tree.insert(DomainName("shop.foo.co.uk"));
  tree.insert(DomainName("x.bar.co.uk"));
  const auto zones = tree.effective_2ld_nodes(PublicSuffixList::builtin());
  std::vector<std::string> names;
  for (const auto* node : zones) {
    names.push_back(DomainNameTree::full_name(*node));
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"bar.co.uk", "example.com",
                                             "foo.co.uk"}));
}

TEST(DomainTreeTest, Effective2ldSkipsBarePublicSuffixes) {
  DomainNameTree tree;
  tree.insert(DomainName("com"));      // a public suffix queried directly
  tree.insert(DomainName("a.b.com"));
  const auto zones = tree.effective_2ld_nodes(PublicSuffixList::builtin());
  ASSERT_EQ(zones.size(), 1u);
  EXPECT_EQ(DomainNameTree::full_name(*zones[0]), "b.com");
}

TEST(DomainTreeTest, ChildOrderMatchesSortedMapReference) {
  // The flat edge-map tree sorts children lazily; traversal order must be
  // indistinguishable from the historical std::map<std::string, Node>
  // layout for every node, or miner output would reshuffle.
  Rng rng(0x7ee);
  DomainNameTree tree;
  std::vector<std::string> inserted;
  for (int i = 0; i < 400; ++i) {
    std::string name = rng.hex_string(2 + rng.below(8));
    name += ".h";
    name += std::to_string(rng.below(12));
    name += rng.chance(0.5) ? ".alpha.test" : ".beta.test";
    tree.insert(DomainName(name));
    inserted.push_back(std::move(name));
  }
  // Reference: the labels of every parent, ordered as std::map would order
  // its keys (lexicographic operator<).
  using HostMap = std::map<std::string, std::set<std::string>>;
  std::map<std::string, std::map<std::string, HostMap>> reference;
  for (const std::string& name : inserted) {
    const DomainName parsed(name);  // labels: hex.h<N>.<alpha|beta>.test
    reference[std::string(parsed.label_from_right(0))]
             [std::string(parsed.label_from_right(1))]
             [std::string(parsed.label_from_right(2))]
                 .insert(std::string(parsed.label(0)));
  }
  ASSERT_EQ(tree.root().children().size(), reference.size());
  std::size_t t = 0;
  for (const auto& [tld, seconds] : reference) {
    const DomainNameTree::Node* tld_node = tree.root().children()[t++];
    ASSERT_EQ(tld_node->label, tld);
    ASSERT_EQ(tld_node->children().size(), seconds.size());
    std::size_t s = 0;
    for (const auto& [second, hosts] : seconds) {
      const DomainNameTree::Node* second_node = tld_node->children()[s++];
      ASSERT_EQ(second_node->label, second);
      ASSERT_EQ(second_node->children().size(), hosts.size());
      std::size_t h = 0;
      for (const auto& [host, leaves] : hosts) {
        const DomainNameTree::Node* host_node = second_node->children()[h++];
        ASSERT_EQ(host_node->label, host);
        ASSERT_EQ(host_node->children().size(), leaves.size());
        std::size_t l = 0;
        for (const std::string& leaf : leaves) {
          EXPECT_EQ(host_node->children()[l++]->label, leaf);
        }
      }
    }
  }
}

TEST(DomainTreeTest, GroupsAreScopedToTheZone) {
  DomainNameTree tree;
  tree.insert(DomainName("x.one.com"));
  tree.insert(DomainName("y.two.com"));
  auto* one = tree.find(DomainName("one.com"));
  const auto groups = tree.black_descendants_by_depth(*one);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups.at(3).size(), 1u);
  EXPECT_EQ(DomainNameTree::full_name(*groups.at(3)[0]), "x.one.com");
}

}  // namespace
}  // namespace dnsnoise
