#include "ml/baselines.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "util/rng.h"
#include "util/stats.h"

namespace dnsnoise {
namespace {

Dataset blobs(std::uint64_t seed, double separation = 2.0,
              std::size_t per_class = 80) {
  Rng rng(seed);
  Dataset data(3);
  for (std::size_t i = 0; i < per_class; ++i) {
    const double x0[3] = {rng.normal(-separation, 0.7),
                          rng.normal(-separation, 0.7), rng.normal(0, 1)};
    data.add(x0, 0);
    const double x1[3] = {rng.normal(separation, 0.7),
                          rng.normal(separation, 0.7), rng.normal(0, 1)};
    data.add(x1, 1);
  }
  return data;
}

double training_accuracy(BinaryClassifier& model, const Dataset& data) {
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double p = model.predict_proba(data.features(i));
    if ((p >= 0.5) == (data.label(i) == 1)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

TEST(StandardizerTest, ZeroMeanUnitVariance) {
  const Dataset data = blobs(1);
  Standardizer standardizer;
  standardizer.fit(data);
  OnlineStats stats[3];
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto z = standardizer.transform(data.features(i));
    for (int d = 0; d < 3; ++d) stats[d].add(z[static_cast<std::size_t>(d)]);
  }
  for (int d = 0; d < 3; ++d) {
    EXPECT_NEAR(stats[d].mean(), 0.0, 1e-9);
    EXPECT_NEAR(stats[d].variance(), 1.0, 1e-6);
  }
}

TEST(StandardizerTest, ConstantFeatureDoesNotBlowUp) {
  Dataset data(1);
  for (int i = 0; i < 10; ++i) {
    const double x[1] = {5.0};
    data.add(x, i % 2);
  }
  Standardizer standardizer;
  standardizer.fit(data);
  const double x[1] = {5.0};
  EXPECT_TRUE(std::isfinite(standardizer.transform(x)[0]));
}

TEST(StandardizerTest, DimensionMismatchThrows) {
  const Dataset data = blobs(2);
  Standardizer standardizer;
  standardizer.fit(data);
  const double bad[1] = {0.0};
  EXPECT_THROW(standardizer.transform(bad), std::invalid_argument);
}

class BaselineAccuracyTest
    : public ::testing::TestWithParam<
          std::pair<const char*, std::unique_ptr<BinaryClassifier> (*)()>> {};

TEST_P(BaselineAccuracyTest, LearnsSeparableBlobs) {
  const Dataset data = blobs(42);
  auto model = GetParam().second();
  model->train(data);
  EXPECT_GT(training_accuracy(*model, data), 0.95) << GetParam().first;
}

TEST_P(BaselineAccuracyTest, ProbabilitiesInRange) {
  const Dataset data = blobs(43);
  auto model = GetParam().second();
  model->train(data);
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const double x[3] = {rng.uniform(-10, 10), rng.uniform(-10, 10),
                         rng.uniform(-10, 10)};
    const double p = model->predict_proba(x);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST_P(BaselineAccuracyTest, EmptyDatasetThrows) {
  auto model = GetParam().second();
  EXPECT_THROW(model->train(Dataset(3)), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(
    Models, BaselineAccuracyTest,
    ::testing::Values(
        std::pair{"naive-bayes",
                  +[]() -> std::unique_ptr<BinaryClassifier> {
                    return std::make_unique<GaussianNaiveBayes>();
                  }},
        std::pair{"knn",
                  +[]() -> std::unique_ptr<BinaryClassifier> {
                    return std::make_unique<KnnClassifier>(5);
                  }},
        std::pair{"logistic",
                  +[]() -> std::unique_ptr<BinaryClassifier> {
                    return std::make_unique<LogisticRegression>();
                  }},
        std::pair{"mlp", +[]() -> std::unique_ptr<BinaryClassifier> {
                    return std::make_unique<Mlp>();
                  }}),
    [](const auto& info) {
      std::string name(info.param.first);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(NaiveBayesTest, RespectsPriors) {
  Rng rng(3);
  Dataset data(1);
  for (int i = 0; i < 95; ++i) {
    const double x[1] = {rng.normal(0, 1)};
    data.add(x, 1);
  }
  for (int i = 0; i < 5; ++i) {
    const double x[1] = {rng.normal(0, 1)};
    data.add(x, 0);
  }
  GaussianNaiveBayes model;
  model.train(data);
  const double x[1] = {0.0};
  EXPECT_GT(model.predict_proba(x), 0.7);
}

TEST(KnnTest, SingleNeighborMemorizes) {
  Dataset data(1);
  const double a[1] = {0.0};
  const double b[1] = {10.0};
  data.add(a, 0);
  data.add(b, 1);
  KnnClassifier model(1);
  model.train(data);
  EXPECT_LT(model.predict_proba(a), 0.5);
  EXPECT_GT(model.predict_proba(b), 0.5);
}

TEST(LogisticTest, LearnsLinearBoundaryDirection) {
  Rng rng(5);
  Dataset data(2);
  for (int i = 0; i < 200; ++i) {
    const double x[2] = {rng.uniform(-2, 2), rng.uniform(-2, 2)};
    data.add(x, x[0] + x[1] > 0 ? 1 : 0);
  }
  LogisticRegression model;
  model.train(data);
  const double pos[2] = {1.5, 1.5};
  const double neg[2] = {-1.5, -1.5};
  EXPECT_GT(model.predict_proba(pos), 0.9);
  EXPECT_LT(model.predict_proba(neg), 0.1);
}

TEST(MlpTest, DeterministicForFixedSeed) {
  const Dataset data = blobs(6);
  MlpConfig config;
  config.epochs = 50;
  Mlp a(config);
  Mlp b(config);
  a.train(data);
  b.train(data);
  const double x[3] = {0.3, -0.7, 1.1};
  EXPECT_DOUBLE_EQ(a.predict_proba(x), b.predict_proba(x));
}

TEST(MlpTest, LearnsNonlinearBoundary) {
  Rng rng(8);
  Dataset data(2);
  for (int i = 0; i < 400; ++i) {
    const double x[2] = {rng.uniform(-2, 2), rng.uniform(-2, 2)};
    // Circle: inside vs outside radius 1.2.
    data.add(x, x[0] * x[0] + x[1] * x[1] < 1.44 ? 1 : 0);
  }
  MlpConfig config;
  config.hidden = 24;
  config.epochs = 400;
  Mlp model(config);
  model.train(data);
  EXPECT_GT(training_accuracy(model, data), 0.9);
}

}  // namespace
}  // namespace dnsnoise
