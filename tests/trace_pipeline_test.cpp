// End-to-end tracing: enabling the collector must never change mining
// results (classic and sharded paths), the recorded trace content must be
// thread-count invariant, and run() must carry a valid dnsnoise-trace-v1
// export covering all four pipeline stages.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "engine/parallel_miner.h"
#include "obs/trace.h"
#include "obs/trace_export.h"

namespace dnsnoise {
namespace {

ScenarioScale small_scale() {
  ScenarioScale scale;
  scale.queries_per_day = 30'000;
  scale.client_count = 1'500;
  scale.population_scale = 0.5;
  return scale;
}

ClusterConfig small_cluster() {
  ClusterConfig cluster;
  cluster.server_count = 4;
  return cluster;
}

/// Byte-exact serialization of the fields that define a finding; two runs
/// are "identical" iff these strings match.
std::string findings_fingerprint(const MiningDayResult& result) {
  std::string out;
  for (const DisposableZoneFinding& finding : result.findings) {
    out += finding.zone;
    out += '/';
    out += std::to_string(finding.depth);
    out += '/';
    // Bit-exact confidence: any float drift must fail the comparison.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%a", finding.confidence);
    out += buf;
    out += '/';
    out += std::to_string(finding.group_size);
    out += '\n';
  }
  return out;
}

TEST(TracePipeline, DisabledByDefault) {
  MiningSession session(small_scale());
  session.cluster(small_cluster()).warmup(false);
  EXPECT_EQ(session.trace(), nullptr);
  const MiningDayResult result = session.run(ScenarioDate::kNov14);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_TRUE(result.trace_json.empty());
}

TEST(TracePipeline, TracingDoesNotChangeShardedFindings) {
  MiningSession plain(small_scale());
  plain.cluster(small_cluster()).warmup(false).threads(2);
  const MiningDayResult without = plain.run(ScenarioDate::kNov14);
  ASSERT_TRUE(without.ok()) << without.error;

  MiningSession traced(small_scale());
  traced.cluster(small_cluster()).warmup(false).threads(2).enable_tracing(
      true, 16);
  const MiningDayResult with = traced.run(ScenarioDate::kNov14);
  ASSERT_TRUE(with.ok()) << with.error;

  ASSERT_GT(without.findings.size(), 0u);
  EXPECT_EQ(findings_fingerprint(without), findings_fingerprint(with));
  EXPECT_FALSE(with.trace_json.empty());
}

TEST(TracePipeline, TracingDoesNotChangeClassicFindings) {
  PipelineOptions options;
  options.scale = small_scale();
  options.cluster = small_cluster();
  options.warmup = false;
  const MiningDayResult without =
      run_mining_day(ScenarioDate::kNov14, options);
  ASSERT_TRUE(without.ok()) << without.error;

  obs::TraceConfig config;
  config.sample_every_n = 16;
  obs::TraceCollector collector(config);
  options.trace = &collector;
  const MiningDayResult with = run_mining_day(ScenarioDate::kNov14, options);
  ASSERT_TRUE(with.ok()) << with.error;

  ASSERT_GT(without.findings.size(), 0u);
  EXPECT_EQ(findings_fingerprint(without), findings_fingerprint(with));
  EXPECT_FALSE(with.trace_json.empty());
}

/// Everything about an event except its wall-clock timing.
using EventKey = std::tuple<obs::TraceStage, std::uint32_t, obs::TraceOp,
                            std::string, std::uint16_t, obs::TraceOutcome,
                            std::uint64_t, bool>;

std::vector<EventKey> event_keys(const obs::TraceSnapshot& snapshot) {
  std::vector<EventKey> keys;
  keys.reserve(snapshot.events.size());
  for (const obs::TraceSnapshotEvent& entry : snapshot.events) {
    keys.emplace_back(entry.stage, entry.shard, entry.event.op,
                      std::string(entry.event.label), entry.event.qtype,
                      entry.event.outcome, entry.event.id,
                      entry.event.instant);
  }
  return keys;
}

TEST(TracePipeline, TraceContentIsThreadCountInvariant) {
  DayCapture capture1;
  MiningSession one(small_scale());
  one.cluster(small_cluster()).warmup(false).threads(1).enable_tracing(true,
                                                                       16);
  ASSERT_TRUE(one.simulate(ScenarioDate::kNov14, capture1).ok());

  DayCapture capture2;
  MiningSession two(small_scale());
  two.cluster(small_cluster()).warmup(false).threads(4).enable_tracing(true,
                                                                       16);
  ASSERT_TRUE(two.simulate(ScenarioDate::kNov14, capture2).ok());

  const std::vector<EventKey> keys1 = event_keys(one.trace()->snapshot());
  const std::vector<EventKey> keys2 = event_keys(two.trace()->snapshot());
  ASSERT_GT(keys1.size(), 0u);
  EXPECT_EQ(keys1, keys2);
}

TEST(TracePipeline, RunCoversAllFourStages) {
  MiningSession session(small_scale());
  session.cluster(small_cluster()).warmup(false).threads(2).enable_tracing(
      true, 16);
  ASSERT_NE(session.trace(), nullptr);
  const MiningDayResult result = session.run(ScenarioDate::kNov14);
  ASSERT_TRUE(result.ok()) << result.error;

  bool saw_stage[5] = {};
  const obs::TraceSnapshot snapshot = session.trace()->snapshot();
  for (const obs::TraceSnapshotEvent& entry : snapshot.events) {
    saw_stage[static_cast<int>(entry.stage)] = true;
  }
  EXPECT_TRUE(saw_stage[static_cast<int>(obs::TraceStage::kWorkload)]);
  EXPECT_TRUE(saw_stage[static_cast<int>(obs::TraceStage::kCluster)]);
  EXPECT_TRUE(saw_stage[static_cast<int>(obs::TraceStage::kEngine)]);
  EXPECT_TRUE(saw_stage[static_cast<int>(obs::TraceStage::kMiner)]);

  // The result's export is the schema header plus the same events.
  EXPECT_NE(result.trace_json.find("\"schema\": \"dnsnoise-trace-v1\""),
            std::string::npos);
  EXPECT_NE(result.trace_json.find("\"cluster.query\""), std::string::npos);
  EXPECT_NE(result.trace_json.find("\"engine.shard\""), std::string::npos);
  EXPECT_NE(result.trace_json.find("\"miner.zone\""), std::string::npos);
  EXPECT_NE(result.trace_json.find("\"workload.sample\""), std::string::npos);
}

TEST(TracePipeline, QuerySpansCarryCacheOutcomes) {
  MiningSession session(small_scale());
  session.cluster(small_cluster()).warmup(false).enable_tracing(true, 16);
  DayCapture capture;
  ASSERT_TRUE(session.simulate(ScenarioDate::kNov14, capture).ok());

  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  const obs::TraceSnapshot snapshot = session.trace()->snapshot();
  for (const obs::TraceSnapshotEvent& entry : snapshot.events) {
    if (entry.event.op != obs::TraceOp::kClusterQuery) continue;
    EXPECT_NE(entry.event.label[0], '\0');  // qname annotation
    EXPECT_NE(entry.event.qtype, 0u);
    if (entry.event.outcome == obs::TraceOutcome::kHit) ++hits;
    if (entry.event.outcome == obs::TraceOutcome::kMiss) ++misses;
  }
  EXPECT_GT(hits, 0u);
  EXPECT_GT(misses, 0u);
}

TEST(TracePipeline, ReenablingResetsTheCollector) {
  MiningSession session(small_scale());
  session.cluster(small_cluster()).warmup(false).enable_tracing();
  DayCapture capture;
  ASSERT_TRUE(session.simulate(ScenarioDate::kNov14, capture).ok());
  EXPECT_GT(session.trace()->stream_count(), 0u);
  session.enable_tracing();  // fresh collector
  EXPECT_EQ(session.trace()->stream_count(), 0u);
  session.enable_tracing(false);
  EXPECT_EQ(session.trace(), nullptr);
}

}  // namespace
}  // namespace dnsnoise
