#include "util/histogram.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace dnsnoise {
namespace {

TEST(LinearHistogramTest, BinsAndClamping) {
  LinearHistogram h(0.0, 1.0, 10);
  h.add(0.05);   // bin 0
  h.add(0.95);   // bin 9
  h.add(-5.0);   // clamped to bin 0
  h.add(5.0);    // clamped to bin 9
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(LinearHistogramTest, WeightedAdd) {
  LinearHistogram h(0.0, 10.0, 5);
  h.add(1.0, 7);
  EXPECT_EQ(h.count(0), 7u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(LinearHistogramTest, BinGeometry) {
  LinearHistogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
}

TEST(LinearHistogramTest, InvalidArgsThrow) {
  EXPECT_THROW(LinearHistogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(LinearHistogram(2.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(LinearHistogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(LogHistogramTest, ZeroGoesToUnderflowBin) {
  LogHistogram h(86400.0);
  h.add(0.0);
  h.add(0.5);
  h.add(1.0);
  EXPECT_EQ(h.zero_count(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(LogHistogramTest, ValuesLandInLogBins) {
  LogHistogram h(100000.0, 1);  // one bin per decade
  h.add(5.0);      // decade 0 (1..10)
  h.add(50.0);     // decade 1
  h.add(5000.0);   // decade 3
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(3), 1u);
}

TEST(LogHistogramTest, OverflowClampsToLastBin) {
  LogHistogram h(1000.0, 1);
  h.add(1e9);
  EXPECT_EQ(h.count(h.bins() - 1), 1u);
}

TEST(LogHistogramTest, BinEdgesAreOrdered) {
  LogHistogram h(86400.0, 4);
  for (std::size_t b = 0; b < h.bins(); ++b) {
    EXPECT_LT(h.bin_lo(b), h.bin_hi(b));
    EXPECT_GE(h.bin_center(b), h.bin_lo(b));
    EXPECT_LE(h.bin_center(b), h.bin_hi(b));
  }
}

TEST(LogHistogramTest, InvalidArgsThrow) {
  EXPECT_THROW(LogHistogram(0.5), std::invalid_argument);
  EXPECT_THROW(LogHistogram(100.0, 0), std::invalid_argument);
}

TEST(CdfTest, CdfAtKnownPoints) {
  const std::vector<double> values = {0.0, 0.0, 0.5, 1.0};
  EXPECT_DOUBLE_EQ(cdf_at(values, -0.1), 0.0);
  EXPECT_DOUBLE_EQ(cdf_at(values, 0.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf_at(values, 0.5), 0.75);
  EXPECT_DOUBLE_EQ(cdf_at(values, 1.0), 1.0);
}

TEST(CdfTest, EmpiricalCdfEmptyAndTiny) {
  EXPECT_TRUE(empirical_cdf({}).empty());
  const std::vector<double> one = {3.0};
  const auto cdf = empirical_cdf(one, 5);
  ASSERT_FALSE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.back().f, 1.0);
}

class EmpiricalCdfPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(EmpiricalCdfPropertyTest, MonotoneAndBounded) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) values.push_back(rng.uniform());
  const auto cdf = empirical_cdf(values, 51);
  ASSERT_FALSE(cdf.empty());
  double prev_x = cdf.front().x;
  double prev_f = 0.0;
  for (const CdfPoint& point : cdf) {
    EXPECT_GE(point.x, prev_x - 1e-12);
    EXPECT_GE(point.f, prev_f - 1e-12);
    EXPECT_GE(point.f, 0.0);
    EXPECT_LE(point.f, 1.0);
    prev_x = point.x;
    prev_f = point.f;
  }
  EXPECT_DOUBLE_EQ(cdf.back().f, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EmpiricalCdfPropertyTest,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace dnsnoise
