#include "dns/wire.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace dnsnoise {
namespace {

DnsMessage sample_response() {
  DnsMessage query = DnsMessage::make_query(0x1234, DomainName("www.example.com"),
                                            RRType::A);
  std::vector<ResourceRecord> answers;
  answers.push_back({DomainName("www.example.com"), RRType::A, 300,
                     "192.0.2.1"});
  answers.push_back({DomainName("www.example.com"), RRType::A, 300,
                     "192.0.2.2"});
  return DnsMessage::make_response(query, RCode::NoError, std::move(answers));
}

TEST(WireTest, QueryRoundTrip) {
  const DnsMessage query =
      DnsMessage::make_query(7, DomainName("a.b.example.org"), RRType::AAAA);
  const auto wire = encode_message(query);
  const auto decoded = decode_message(wire);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, query);
}

TEST(WireTest, ResponseRoundTrip) {
  const DnsMessage response = sample_response();
  const auto wire = encode_message(response);
  const auto decoded = decode_message(wire);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, response);
}

TEST(WireTest, HeaderFlagsSurvive) {
  DnsMessage msg = sample_response();
  msg.header.aa = true;
  msg.header.tc = true;
  msg.header.rd = false;
  msg.header.ra = true;
  msg.header.rcode = RCode::ServFail;
  msg.answers.clear();
  const auto decoded = decode_message(encode_message(msg));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->header, msg.header);
}

TEST(WireTest, NxdomainResponse) {
  const DnsMessage query =
      DnsMessage::make_query(9, DomainName("no.such.name.com"), RRType::A);
  const DnsMessage response =
      DnsMessage::make_response(query, RCode::NXDomain, {});
  const auto decoded = decode_message(encode_message(response));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->header.rcode, RCode::NXDomain);
  EXPECT_TRUE(decoded->answers.empty());
  EXPECT_EQ(decoded->questions.at(0).name.text(), "no.such.name.com");
}

TEST(WireTest, CnameChainRoundTrip) {
  DnsMessage query = DnsMessage::make_query(3, DomainName("x.example.com"),
                                            RRType::A);
  std::vector<ResourceRecord> answers;
  answers.push_back({DomainName("x.example.com"), RRType::CNAME, 60,
                     "edge-1.l.example.com"});
  answers.push_back({DomainName("edge-1.l.example.com"), RRType::A, 60,
                     "10.1.2.3"});
  const DnsMessage response =
      DnsMessage::make_response(query, RCode::NoError, std::move(answers));
  const auto decoded = decode_message(encode_message(response));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, response);
}

TEST(WireTest, AaaaRoundTrip) {
  DnsMessage query = DnsMessage::make_query(4, DomainName("v6.example.com"),
                                            RRType::AAAA);
  std::vector<ResourceRecord> answers;
  answers.push_back({DomainName("v6.example.com"), RRType::AAAA, 120,
                     "2001:db8::42"});
  const DnsMessage response =
      DnsMessage::make_response(query, RCode::NoError, std::move(answers));
  const auto decoded = decode_message(encode_message(response));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->answers.at(0).rdata, "2001:db8::42");
}

TEST(WireTest, TxtRoundTripIncludingLongStrings) {
  DnsMessage query =
      DnsMessage::make_query(5, DomainName("t.example.com"), RRType::TXT);
  std::vector<ResourceRecord> answers;
  answers.push_back({DomainName("t.example.com"), RRType::TXT, 60,
                     std::string(600, 'x')});  // forces multi-chunk encoding
  const DnsMessage response =
      DnsMessage::make_response(query, RCode::NoError, std::move(answers));
  const auto decoded = decode_message(encode_message(response));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->answers.at(0).rdata, std::string(600, 'x'));
}

TEST(WireTest, CompressionShrinksRepeatedNames) {
  // Same owner name in the question and two answers: compression must beat
  // naive re-encoding.
  const DnsMessage response = sample_response();
  const auto wire = encode_message(response);
  const std::size_t name_bytes = DomainName("www.example.com").text().size() + 2;
  // Naive: 3 copies of the name; compressed: 1 copy + 2 two-byte pointers.
  EXPECT_LT(wire.size(), 12 + name_bytes * 3 + 2 * (2 + 2 + 4 + 2 + 4) + 4);
}

TEST(WireTest, BadARdataThrowsOnEncode) {
  DnsMessage msg;
  msg.answers.push_back({DomainName("x.com"), RRType::A, 60, "not-an-ip"});
  EXPECT_THROW(encode_message(msg), std::invalid_argument);
}

TEST(WireTest, DecodeRejectsTruncatedHeader) {
  const std::vector<std::uint8_t> tiny = {0x00, 0x01, 0x02};
  EXPECT_FALSE(decode_message(tiny));
}

TEST(WireTest, DecodeRejectsCompressionLoop) {
  // Header claiming one question whose name is a pointer to itself.
  std::vector<std::uint8_t> wire(12, 0);
  wire[5] = 1;  // qdcount = 1
  wire.push_back(0xc0);
  wire.push_back(0x0c);  // pointer to offset 12 (itself)
  wire.push_back(0x00);
  wire.push_back(0x01);
  wire.push_back(0x00);
  wire.push_back(0x01);
  EXPECT_FALSE(decode_message(wire));
}

TEST(WireTest, DecodeRejectsForwardPointer) {
  std::vector<std::uint8_t> wire(12, 0);
  wire[5] = 1;
  wire.push_back(0xc0);
  wire.push_back(0x30);  // pointer past the current position
  wire.push_back(0x00);
  wire.push_back(0x01);
  wire.push_back(0x00);
  wire.push_back(0x01);
  EXPECT_FALSE(decode_message(wire));
}

TEST(WireTest, TruncationSweepNeverCrashes) {
  // Property: every strict prefix of a valid message decodes to nullopt or
  // (for prefixes that happen to be self-delimiting) a valid message — and
  // never crashes or reads out of bounds.
  const auto wire = encode_message(sample_response());
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const auto decoded = decode_message(
        std::span<const std::uint8_t>(wire.data(), len));
    // Prefixes shorter than the header can never decode.
    if (len < 12) {
      EXPECT_FALSE(decoded);
    }
  }
}

class WireFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireFuzzTest, RandomBytesNeverCrash) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::uint8_t> junk(rng.below(200));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    (void)decode_message(junk);  // must not crash; result value is free
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzzTest, ::testing::Values(1, 2, 3, 4));

class WireMutationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireMutationTest, BitFlippedMessagesNeverCrash) {
  Rng rng(GetParam());
  const auto wire = encode_message(sample_response());
  for (int trial = 0; trial < 500; ++trial) {
    auto mutated = wire;
    const std::size_t flips = 1 + rng.below(8);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.below(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
    }
    (void)decode_message(mutated);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireMutationTest,
                         ::testing::Values(11, 22, 33, 44));

TEST(WireTest, DecodeNameStandalone) {
  const auto wire = encode_message(sample_response());
  std::size_t offset = 12;
  const auto name = decode_name(wire, offset);
  ASSERT_TRUE(name);
  EXPECT_EQ(name->text(), "www.example.com");
  EXPECT_GT(offset, 12u);
}

}  // namespace
}  // namespace dnsnoise
