// Concurrency contracts of the observability layer, written to run under
// TSan (labeled `engine` so the sanitizer CI job picks it up): snapshots
// and the progress reporter must be safe while shard workers hammer the
// hot recording paths.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "obs/json_snapshot.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"

namespace dnsnoise::obs {
namespace {

constexpr int kWriters = 4;
constexpr int kOpsPerWriter = 20'000;

TEST(ObsConcurrency, SnapshotWhileRecording) {
  MetricsRegistry registry;
  // Handles resolved up front, like every instrumentation site.
  Counter& counter = registry.counter("test.counter");
  Gauge& gauge = registry.gauge("test.gauge");
  Timer& timer = registry.timer("test.timer");
  Histogram& histogram = registry.histogram("test.histogram", 1e6);

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        counter.add();
        gauge.set(static_cast<double>(i));
        timer.record_ns(static_cast<std::uint64_t>(i + 1));
        if (i % 64 == 0) histogram.record(static_cast<double>(w * 100 + i));
      }
    });
  }
  // Snapshot + serialize concurrently with the writers — the progress
  // reporter and a mid-run exporter do exactly this.
  std::thread snapshotter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const MetricsSnapshot snapshot = registry.snapshot();
      const std::string json = to_json(snapshot);
      EXPECT_FALSE(json.empty());
    }
  });
  // Registration from another thread races the snapshots too.
  std::thread registrar([&] {
    for (int i = 0; i < 100; ++i) {
      registry.counter("test.late" + std::to_string(i)).add();
    }
  });

  for (std::thread& writer : writers) writer.join();
  registrar.join();
  stop.store(true, std::memory_order_relaxed);
  snapshotter.join();

  const MetricsSnapshot final_snapshot = registry.snapshot();
  const MetricSample* sample = final_snapshot.find("test.counter");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->count,
            static_cast<std::uint64_t>(kWriters) * kOpsPerWriter);
  const MetricSample* timed = final_snapshot.find("test.timer");
  ASSERT_NE(timed, nullptr);
  EXPECT_EQ(timed->count,
            static_cast<std::uint64_t>(kWriters) * kOpsPerWriter);
}

TEST(ObsConcurrency, TraceStreamConcurrentWriters) {
  // The classify fan-out shares the miner stream across pool workers; the
  // ring's claim must stay race-free and lose nothing below capacity.
  TraceCollector collector;  // default ring (32768) > total events below
  TraceStream& stream = collector.stream(TraceStage::kMiner, 0);
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < 1'000; ++i) {
        stream.instant(TraceOp::kMinerGroupClassify,
                       static_cast<std::uint64_t>(i),
                       "zone.example", static_cast<std::uint64_t>(w));
      }
    });
  }
  for (std::thread& writer : writers) writer.join();

  EXPECT_EQ(stream.recorded(), static_cast<std::uint64_t>(kWriters) * 1'000);
  EXPECT_EQ(stream.dropped(), 0u);
  EXPECT_EQ(collector.snapshot().events.size(),
            static_cast<std::size_t>(kWriters) * 1'000);
}

TEST(ObsConcurrency, ProgressReporterWhileRecording) {
  MetricsRegistry registry;
  Counter& answered = registry.counter("cluster.below_answers");
  Timer& shards = registry.timer("engine.shard");

  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  ProgressConfig config;
  config.interval_seconds = 0.001;  // hammer the reader
  config.expected_queries = kWriters * kOpsPerWriter;
  config.shard_count = kWriters;
  config.out = sink;
  {
    ProgressReporter reporter(registry, config);
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&] {
        for (int i = 0; i < kOpsPerWriter; ++i) answered.add();
        shards.record_ns(1'000);
      });
    }
    for (std::thread& writer : writers) writer.join();
    reporter.stop();
    reporter.stop();  // idempotent
  }
  // The reporter printed at least the final line.
  EXPECT_GT(std::ftell(sink), 0);
  std::fclose(sink);
}

}  // namespace
}  // namespace dnsnoise::obs
