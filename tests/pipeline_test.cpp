#include "miner/pipeline.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "ml/eval.h"

namespace dnsnoise {
namespace {

PipelineOptions small_options() {
  PipelineOptions options;
  options.scale.queries_per_day = 90'000;
  options.scale.client_count = 4'000;
  options.scale.population_scale = 0.5;
  options.labeler.min_group_size = 8;
  return options;
}

class PipelineTest : public ::testing::Test {
 protected:
  static const MiningDayResult& result() {
    // One shared end-to-end run; the assertions below each check one
    // contract of the pipeline.
    static const MiningDayResult shared =
        run_mining_day(ScenarioDate::kNov14, small_options());
    return shared;
  }
};

TEST_F(PipelineTest, ProducesLabeledZonesOfBothClasses) {
  const auto& labeled = result().labeled;
  const auto positives = static_cast<std::size_t>(
      std::count_if(labeled.begin(), labeled.end(),
                    [](const LabeledZone& z) { return z.label == 1; }));
  EXPECT_GT(positives, 25u);
  EXPECT_GT(labeled.size() - positives, 50u);
}

TEST_F(PipelineTest, MinesZonesWithHighPrecision) {
  const MiningEvaluation& eval = result().evaluation;
  EXPECT_GT(eval.findings, 20u);
  EXPECT_GT(eval.finding_precision(), 0.9);
  EXPECT_GT(eval.truth_zones_discovered, 20u);
  EXPECT_LE(eval.unique_2lds, eval.findings);
  EXPECT_EQ(eval.true_positive_findings + eval.false_positive_findings,
            eval.findings);
}

TEST_F(PipelineTest, AggregatesAreConsistent) {
  const DayAggregates& agg = result().aggregates;
  EXPECT_GT(agg.unique_queried, agg.unique_resolved);
  EXPECT_LE(agg.disposable_queried, agg.unique_queried);
  EXPECT_LE(agg.disposable_resolved, agg.unique_resolved);
  EXPECT_LE(agg.disposable_rrs, agg.unique_rrs);
  // Disposable names are successfully resolved names: the queried and
  // resolved disposable counts must be close (mined zones resolve).
  EXPECT_EQ(agg.disposable_queried, agg.disposable_resolved);
  // Shares fall in loose paper-like bands.
  const double queried_share = static_cast<double>(agg.disposable_queried) /
                               static_cast<double>(agg.unique_queried);
  EXPECT_GT(queried_share, 0.10);
  EXPECT_LT(queried_share, 0.45);
}

TEST_F(PipelineTest, FindingsHaveEvidence) {
  for (const auto& finding : result().findings) {
    EXPECT_GE(finding.confidence, 0.9);
    EXPECT_GE(finding.group_size, 5u);
    EXPECT_GT(finding.depth, 2u);
    EXPECT_FALSE(finding.zone.empty());
  }
}

TEST(PipelineUnitTest, FindingIndexMatchesZoneAndDepth) {
  std::vector<DisposableZoneFinding> findings;
  DisposableZoneFinding f;
  f.zone = "vendor.com";
  f.depth = 4;
  findings.push_back(f);
  const FindingIndex index(findings);
  EXPECT_EQ(index.size(), 1u);
  EXPECT_TRUE(index.is_disposable(DomainName("a.avqs.vendor.com")));
  EXPECT_FALSE(index.is_disposable(DomainName("a.b.avqs.vendor.com")));  // depth 5
  EXPECT_FALSE(index.is_disposable(DomainName("a.avqs.other.com")));
  EXPECT_FALSE(index.is_disposable(DomainName("vendor.com")));
}

TEST(PipelineUnitTest, EvaluateFindingsMatching) {
  GroundTruth truth;
  truth.disposable_zones.push_back({"avqs.vendor.com", 4, "reputation"});
  truth.disposable_apexes.insert("avqs.vendor.com");

  std::vector<DisposableZoneFinding> findings;
  DisposableZoneFinding tp;
  tp.zone = "vendor.com";  // ancestor of the truth apex, same depth
  tp.depth = 4;
  findings.push_back(tp);
  DisposableZoneFinding wrong_depth;
  wrong_depth.zone = "vendor.com";
  wrong_depth.depth = 7;
  findings.push_back(wrong_depth);
  DisposableZoneFinding unrelated;
  unrelated.zone = "innocent.org";
  unrelated.depth = 4;
  findings.push_back(unrelated);

  const MiningEvaluation eval = evaluate_findings(findings, truth);
  EXPECT_EQ(eval.findings, 3u);
  EXPECT_EQ(eval.true_positive_findings, 1u);
  EXPECT_EQ(eval.false_positive_findings, 2u);
  EXPECT_EQ(eval.truth_zones_discovered, 1u);
  EXPECT_EQ(eval.unique_2lds, 2u);
}

TEST(PipelineUnitTest, CrossValidationHitsPaperBands) {
  // Paper Fig. 12: theta=0.5 gives ~97% TPR at ~1% FPR on 10-fold CV.
  PipelineOptions options = small_options();
  Scenario scenario(ScenarioDate::kNov14, options.scale);
  DayCapture capture;
  simulate_day(scenario, capture, options,
               scenario_day_index(ScenarioDate::kNov14));
  const auto labeled =
      label_zones(capture.tree(), capture.chr(), scenario, options.labeler);
  const Dataset data = to_dataset(labeled);
  const auto scores = cross_val_scores(
      data, [] { return std::make_unique<LadTree>(); }, 10, 2011);
  std::vector<int> labels;
  for (std::size_t i = 0; i < data.size(); ++i) {
    labels.push_back(data.label(i));
  }
  const Confusion at_half = confusion_at(scores, labels, 0.5);
  EXPECT_GT(at_half.tpr(), 0.90);
  EXPECT_LT(at_half.fpr(), 0.05);
  const auto curve = roc_curve(scores, labels);
  EXPECT_GT(auc(curve), 0.97);
}

TEST(PipelineUnitTest, WarmupReducesColdMisses) {
  PipelineOptions with_warmup = small_options();
  with_warmup.scale.queries_per_day = 20'000;
  PipelineOptions without = with_warmup;
  without.warmup = false;

  Scenario s1(ScenarioDate::kFeb01, with_warmup.scale);
  DayCapture c1;
  simulate_day(s1, c1, with_warmup, 0);

  Scenario s2(ScenarioDate::kFeb01, without.scale);
  DayCapture c2;
  simulate_day(s2, c2, without, 0);

  // With warm caches, fewer above-answers for the same below volume.
  EXPECT_LT(c1.above_series().sum_total(), c2.above_series().sum_total());
}

}  // namespace
}  // namespace dnsnoise
