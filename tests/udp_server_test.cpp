// Transport-layer tests for net/udp_server: datagram round trips, socket
// sharding, drop semantics, restart, and the RFC 1035 §4.2.2 TCP framing.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/udp_client.h"
#include "net/udp_server.h"

namespace dnsnoise::net {
namespace {

/// Handler echoing the payload back with every byte incremented — proves
/// the response really came through the handler, not a kernel echo.
bool plus_one_handler(std::span<const std::uint8_t> request, const UdpPeer&,
                      std::vector<std::uint8_t>& response) {
  response.assign(request.begin(), request.end());
  for (std::uint8_t& b : response) ++b;
  return true;
}

TEST(UdpServer, EchoRoundTrip) {
  UdpServer server;
  ASSERT_TRUE(server.start({}, plus_one_handler)) << server.error();
  ASSERT_NE(server.port(), 0);

  UdpClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port())) << client.error();
  const std::vector<std::uint8_t> payload = {1, 2, 3, 250};
  // Retried: an oversubscribed ctest -j run can starve the shard thread
  // past a single receive timeout, and the echo handler is idempotent.
  std::optional<std::vector<std::uint8_t>> reply;
  for (int attempt = 0; attempt < 5 && !reply.has_value(); ++attempt) {
    reply = client.exchange(payload, 2000);
  }
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(*reply, (std::vector<std::uint8_t>{2, 3, 4, 251}));
  // The kernel can deliver the reply before the shard thread bumps its
  // post-send counters; poll briefly instead of asserting instantly.
  for (int i = 0; i < 100 && server.datagrams_sent() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server.datagrams_received(), 1u);
  EXPECT_GE(server.datagrams_sent(), 1u);
}

TEST(UdpServer, HandlerDropSendsNothing) {
  UdpServer server;
  ASSERT_TRUE(server.start(
      {}, [](std::span<const std::uint8_t>, const UdpPeer&,
             std::vector<std::uint8_t>&) { return false; }));
  UdpClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
  const std::vector<std::uint8_t> payload = {42};
  EXPECT_FALSE(client.exchange(payload, 300).has_value());
  EXPECT_EQ(server.datagrams_sent(), 0u);
}

TEST(UdpServer, ManyDatagramsAcrossShards) {
  UdpServerConfig config;
  config.shards = 4;
  config.batch = 8;
  UdpServer server;
  ASSERT_TRUE(server.start(config, plus_one_handler)) << server.error();
  EXPECT_GE(server.shard_count(), 1u);

  UdpClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
  std::size_t answered = 0;
  for (std::uint8_t i = 0; i < 100; ++i) {
    const std::vector<std::uint8_t> payload = {i, 7};
    std::optional<std::vector<std::uint8_t>> reply;
    for (int attempt = 0; attempt < 5 && !reply.has_value(); ++attempt) {
      reply = client.exchange(payload, 2000);
    }
    ASSERT_TRUE(reply.has_value()) << "datagram " << int(i);
    EXPECT_EQ(*reply, (std::vector<std::uint8_t>{
                          static_cast<std::uint8_t>(i + 1), 8}));
    ++answered;
  }
  EXPECT_EQ(answered, 100u);
  EXPECT_GE(server.datagrams_received(), 100u);
}

TEST(UdpServer, BadBindAddressFails) {
  UdpServerConfig config;
  config.host = "not-an-address";
  UdpServer server;
  EXPECT_FALSE(server.start(config, plus_one_handler));
  EXPECT_FALSE(server.error().empty());
  EXPECT_FALSE(server.running());
}

TEST(UdpServer, RestartRebinds) {
  UdpServer server;
  ASSERT_TRUE(server.start({}, plus_one_handler));
  const std::uint16_t first = server.port();
  server.stop();
  EXPECT_FALSE(server.running());
  ASSERT_TRUE(server.start({}, plus_one_handler));
  EXPECT_NE(server.port(), 0);
  EXPECT_TRUE(server.running());
  (void)first;  // ephemeral ports may or may not repeat; both are fine
}

TEST(DnsTcpListener, FramedRoundTrip) {
  DnsTcpListener listener;
  ASSERT_TRUE(listener.start("127.0.0.1", 0, plus_one_handler))
      << listener.error();
  ASSERT_NE(listener.port(), 0);

  const std::vector<std::uint8_t> payload = {9, 8, 7};
  const auto reply = tcp_exchange("127.0.0.1", listener.port(), payload, 2000);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(*reply, (std::vector<std::uint8_t>{10, 9, 8}));

  // Connections are serial; a second exchange must work after the first.
  const auto again = tcp_exchange("127.0.0.1", listener.port(), payload, 2000);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, (std::vector<std::uint8_t>{10, 9, 8}));
}

TEST(DnsTcpListener, DropClosesWithoutResponse) {
  DnsTcpListener listener;
  ASSERT_TRUE(listener.start(
      "127.0.0.1", 0,
      [](std::span<const std::uint8_t>, const UdpPeer&,
         std::vector<std::uint8_t>&) { return false; }));
  const std::vector<std::uint8_t> payload = {1};
  EXPECT_FALSE(
      tcp_exchange("127.0.0.1", listener.port(), payload, 500).has_value());
}

TEST(UdpClient, ConnectFailureReported) {
  UdpClient client;
  EXPECT_FALSE(client.connect("bogus-host-name", 53));
  EXPECT_FALSE(client.error().empty());
}

TEST(ReplayMeta, RoundTrip) {
  DnsMessage query = DnsMessage::make_query(
      7, *DomainName::parse("a.example.com"), RRType::A);
  attach_replay_meta(query, {.ts = 86'400'123, .client_id = 0xdeadbeefULL});
  ASSERT_EQ(query.additional.size(), 1u);
  const auto meta = extract_replay_meta(query);
  ASSERT_TRUE(meta.has_value());
  EXPECT_EQ(meta->ts, 86'400'123);
  EXPECT_EQ(meta->client_id, 0xdeadbeefULL);
}

TEST(ReplayMeta, MalformedOrAbsentRejected) {
  DnsMessage query = DnsMessage::make_query(
      7, *DomainName::parse("a.example.com"), RRType::A);
  EXPECT_FALSE(extract_replay_meta(query).has_value());

  ResourceRecord rr;
  rr.name = DomainName(kReplayMetaName);
  rr.type = RRType::TXT;
  rr.rdata = "ts=borked client=";
  query.additional.push_back(rr);
  EXPECT_FALSE(extract_replay_meta(query).has_value());
}

}  // namespace
}  // namespace dnsnoise::net
