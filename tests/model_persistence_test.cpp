#include <gtest/gtest.h>

#include "ml/eval.h"
#include "ml/lad_tree.h"
#include "util/rng.h"

namespace dnsnoise {
namespace {

Dataset blobs(std::uint64_t seed, std::size_t per_class = 80) {
  Rng rng(seed);
  Dataset data(4);
  for (std::size_t i = 0; i < per_class; ++i) {
    const double x0[4] = {rng.normal(-2, 1), rng.normal(-1, 1),
                          rng.normal(0, 1), rng.normal(1, 2)};
    data.add(x0, 0);
    const double x1[4] = {rng.normal(2, 1), rng.normal(1, 1),
                          rng.normal(0, 1), rng.normal(-1, 2)};
    data.add(x1, 1);
  }
  return data;
}

TEST(LadTreePersistenceTest, RoundTripIsBitIdentical) {
  const Dataset data = blobs(1);
  LadTree model;
  model.train(data);
  const auto bytes = model.serialize();
  const auto restored = LadTree::deserialize(bytes);
  ASSERT_TRUE(restored);
  EXPECT_EQ(restored->splitters().size(), model.splitters().size());
  EXPECT_DOUBLE_EQ(restored->root_prediction(), model.root_prediction());
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const double x[4] = {rng.uniform(-5, 5), rng.uniform(-5, 5),
                         rng.uniform(-5, 5), rng.uniform(-5, 5)};
    EXPECT_DOUBLE_EQ(restored->predict_proba(x), model.predict_proba(x));
  }
}

TEST(LadTreePersistenceTest, UntrainedPriorOnlyModelRoundTrips) {
  Dataset data(2);
  const double x[2] = {0.0, 0.0};
  data.add(x, 1);
  data.add(x, 0);
  LadTree model(LadTreeConfig{.iterations = 0});
  model.train(data);
  const auto restored = LadTree::deserialize(model.serialize());
  ASSERT_TRUE(restored);
  EXPECT_DOUBLE_EQ(restored->predict_proba(x), model.predict_proba(x));
}

TEST(LadTreePersistenceTest, RejectsBadMagic) {
  std::vector<std::uint8_t> junk = {'X', 'X', 'X', 'X', 0, 0, 0, 0};
  EXPECT_FALSE(LadTree::deserialize(junk));
  EXPECT_FALSE(LadTree::deserialize({}));
}

TEST(LadTreePersistenceTest, RejectsTruncation) {
  const Dataset data = blobs(3);
  LadTree model;
  model.train(data);
  const auto bytes = model.serialize();
  for (std::size_t len = 0; len < bytes.size(); len += 7) {
    EXPECT_FALSE(LadTree::deserialize(
        std::span<const std::uint8_t>(bytes.data(), len)))
        << "prefix " << len;
  }
}

TEST(LadTreePersistenceTest, RejectsStructuralCorruption) {
  const Dataset data = blobs(4);
  LadTree model;
  model.train(data);
  ASSERT_FALSE(model.splitters().empty());
  auto bytes = model.serialize();
  // Corrupt the first splitter's parent id (offset: magic 4 + dim 8 +
  // root 8 + count 8 = 28) to a huge value.
  bytes[28 + 6] = 0x7f;
  EXPECT_FALSE(LadTree::deserialize(bytes));
}

class PersistenceFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PersistenceFuzzTest, RandomBytesNeverCrash) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::uint8_t> junk(rng.below(400));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    // Stamp a valid magic sometimes to reach deeper parse paths.
    if (junk.size() >= 4 && rng.chance(0.5)) {
      junk[0] = 'L';
      junk[1] = 'A';
      junk[2] = 'D';
      junk[3] = '1';
    }
    const auto model = LadTree::deserialize(junk);
    if (model && model->dim() < 1024) {
      // If it parsed, predictions must still be safe to call.
      const std::vector<double> x(model->dim(), 0.0);
      (void)model->predict_proba(x);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PersistenceFuzzTest,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace dnsnoise
