#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace dnsnoise {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(RngTest, BelowStaysInBounds) {
  Rng rng(3);
  for (const std::uint64_t n : {1ULL, 2ULL, 7ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(n), n);
  }
}

TEST(RngTest, BelowOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(RngTest, RangeInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / kSamples, 3.0, 0.05);
}

TEST(RngTest, NormalMoments) {
  Rng rng(19);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kSamples;
  const double var = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(RngTest, PoissonMeanSmallAndLarge) {
  Rng rng(23);
  for (const double mean : {0.5, 4.0, 100.0}) {
    double sum = 0.0;
    constexpr int kSamples = 50000;
    for (int i = 0; i < kSamples; ++i) {
      sum += static_cast<double>(rng.poisson(mean));
    }
    EXPECT_NEAR(sum / kSamples, mean, mean * 0.05 + 0.05);
  }
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(29);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(RngTest, GeometricMean) {
  Rng rng(31);
  const double p = 0.25;
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(rng.geometric(p));
  }
  // E[failures before success] = (1-p)/p = 3.
  EXPECT_NEAR(sum / kSamples, 3.0, 0.1);
}

TEST(RngTest, ParetoAtLeastScale) {
  Rng rng(37);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(RngTest, HexStringAlphabetAndLength) {
  Rng rng(41);
  const std::string s = rng.hex_string(64);
  EXPECT_EQ(s.size(), 64u);
  for (const char c : s) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
  }
}

TEST(RngTest, StringOverUsesOnlyAlphabet) {
  Rng rng(43);
  const std::string s = rng.string_over("ab", 1000);
  std::set<char> seen(s.begin(), s.end());
  EXPECT_LE(seen.size(), 2u);
  EXPECT_TRUE(seen.contains('a'));
  EXPECT_TRUE(seen.contains('b'));
}

TEST(RngTest, ForkIsIndependentOfParentDraws) {
  Rng a(99);
  Rng b(99);
  // Forking with the same stream id from identical parents must agree even
  // if one parent later draws values.
  Rng fork_a = a.fork(5);
  (void)b();  // NOTE: fork depends on state, so fork before drawing
  Rng fork_a2 = Rng(99).fork(5);
  EXPECT_EQ(fork_a(), fork_a2());
}

TEST(RngTest, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(1), mix64(1));
  EXPECT_NE(mix64(1), mix64(2));
}

TEST(RngTest, Fnv1aKnownValues) {
  // FNV-1a 64-bit published test vector.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
}

class RngBoundsTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBoundsTest, BelowNeverReachesBound) {
  Rng rng(GetParam());
  const std::uint64_t n = GetParam() % 1000 + 1;
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(rng.below(n), n);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngBoundsTest,
                         ::testing::Values(1, 2, 3, 1000, 99999, 123456789));

}  // namespace
}  // namespace dnsnoise
