#include "workload/scenario.h"

#include <gtest/gtest.h>

#include <map>

namespace dnsnoise {
namespace {

TEST(ScenarioDateTest, NamesAndOffsets) {
  EXPECT_EQ(scenario_date_name(ScenarioDate::kFeb01), "02/01/2011");
  EXPECT_EQ(scenario_date_name(ScenarioDate::kDec30), "12/30/2011");
  EXPECT_EQ(scenario_day_index(ScenarioDate::kFeb01), 0);
  EXPECT_EQ(scenario_day_index(ScenarioDate::kSep02), 213);
  EXPECT_EQ(scenario_day_index(ScenarioDate::kDec30), 332);
  EXPECT_DOUBLE_EQ(scenario_progress(ScenarioDate::kFeb01), 0.0);
  EXPECT_DOUBLE_EQ(scenario_progress(ScenarioDate::kDec30), 1.0);
  double last = -1.0;
  for (const ScenarioDate date : kAllScenarioDates) {
    EXPECT_GT(scenario_progress(date), last);
    last = scenario_progress(date);
  }
}

TEST(ScenarioTtlTest, FebruarySkewsLowDecemberSkews300) {
  Rng rng(1);
  std::map<std::uint32_t, int> feb;
  std::map<std::uint32_t, int> dec;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    ++feb[sample_disposable_ttl(rng, 0.0)];
    ++dec[sample_disposable_ttl(rng, 1.0)];
  }
  // February's policy mix skews to tiny TTLs (the paper measures 28% of
  // disposable *domains* at TTL=1s once zone volume weighting applies);
  // December's mode is 300s.
  EXPECT_NEAR(static_cast<double>(feb[1]) / kSamples, 0.45, 0.02);
  EXPECT_NEAR(static_cast<double>(feb[0]) / kSamples, 0.008, 0.004);
  EXPECT_GT(dec[300], dec[1] * 5);
  EXPECT_GT(static_cast<double>(dec[300]) / kSamples, 0.45);
}

TEST(ScenarioTest, ConstructsAllDates) {
  ScenarioScale scale;
  scale.queries_per_day = 1000;
  scale.population_scale = 0.05;
  for (const ScenarioDate date : kAllScenarioDates) {
    const Scenario scenario(date, scale);
    EXPECT_GT(scenario.truth().disposable_zones.size(), 5u);
    EXPECT_GT(scenario.authority().zone_count(), 10u);
    EXPECT_FALSE(scenario.popular_apexes().empty());
  }
}

TEST(ScenarioTest, ZonePopulationGrowsOverTheYear) {
  ScenarioScale scale;
  scale.population_scale = 0.2;
  const Scenario feb(ScenarioDate::kFeb01, scale);
  const Scenario dec(ScenarioDate::kDec30, scale);
  EXPECT_GT(dec.truth().disposable_zones.size(),
            feb.truth().disposable_zones.size());
  // Earlier zones persist: February's apexes are a subset of December's.
  for (const auto& info : feb.truth().disposable_zones) {
    EXPECT_TRUE(dec.truth().disposable_apexes.contains(info.apex))
        << info.apex;
  }
}

TEST(ScenarioTest, GroundTruthPredicate) {
  ScenarioScale scale;
  scale.population_scale = 0.1;
  const Scenario scenario(ScenarioDate::kDec30, scale);
  const GroundTruth& truth = scenario.truth();
  ASSERT_FALSE(truth.disposable_zones.empty());
  const auto& zone = truth.disposable_zones.front();
  EXPECT_TRUE(truth.is_disposable_name(
      DomainName("some.generated.name." + zone.apex).nld(zone.name_depth)));
  EXPECT_TRUE(truth.is_disposable_name(DomainName("x." + zone.apex)));
  EXPECT_FALSE(truth.is_disposable_name(DomainName("www.google.com")));
  EXPECT_FALSE(truth.is_disposable_name(DomainName("e1.g.akamai.net")));
}

TEST(ScenarioTest, TenantAttribution) {
  EXPECT_TRUE(Scenario::is_google_name(DomainName("mail.google.com")));
  EXPECT_TRUE(Scenario::is_google_name(
      DomainName("p2.abc.def.123.i1.ds.ipv6-exp.l.google.com")));
  EXPECT_FALSE(Scenario::is_google_name(DomainName("google.com.evil.org")));
  EXPECT_TRUE(Scenario::is_akamai_name(DomainName("e1.g.akamai.net")));
  EXPECT_TRUE(Scenario::is_akamai_name(DomainName("x.edgesuite.net")));
  EXPECT_FALSE(Scenario::is_akamai_name(DomainName("akamai.evil.org")));
}

TEST(ScenarioTest, DisposableMultiplierZeroRemovesDisposableTenants) {
  ScenarioScale scale;
  scale.queries_per_day = 1000;
  scale.population_scale = 0.05;
  scale.disposable_traffic_multiplier = 0.0;
  const Scenario scenario(ScenarioDate::kDec30, scale);
  EXPECT_TRUE(scenario.truth().disposable_zones.empty());
}

TEST(ScenarioTest, TrafficStreamVariesQueriesOnly) {
  ScenarioScale a;
  a.queries_per_day = 2000;
  a.population_scale = 0.05;
  ScenarioScale b = a;
  b.traffic_stream = 1;
  Scenario sa(ScenarioDate::kFeb01, a);
  Scenario sb(ScenarioDate::kFeb01, b);
  // Same zone population...
  ASSERT_EQ(sa.truth().disposable_zones.size(),
            sb.truth().disposable_zones.size());
  EXPECT_EQ(sa.truth().disposable_zones.front().apex,
            sb.truth().disposable_zones.front().apex);
  // ...but different query streams.
  std::vector<std::string> qa;
  std::vector<std::string> qb;
  sa.traffic().run_day(0, [&qa](SimTime, std::uint64_t, const QuerySpec& q) {
    qa.push_back(q.qname);
  });
  sb.traffic().run_day(0, [&qb](SimTime, std::uint64_t, const QuerySpec& q) {
    qb.push_back(q.qname);
  });
  EXPECT_NE(qa, qb);
}

TEST(ScenarioTest, SampleDayHasPaperLikeMix) {
  // Light end-to-end sanity: on a small day, disposable names are a
  // nontrivial minority of queried names and NXDOMAINs exist.
  ScenarioScale scale;
  scale.queries_per_day = 20'000;
  scale.client_count = 500;
  scale.population_scale = 0.2;
  Scenario scenario(ScenarioDate::kDec30, scale);
  std::size_t total = 0;
  std::size_t disposable = 0;
  scenario.traffic().run_day(0, [&](SimTime, std::uint64_t,
                                    const QuerySpec& q) {
    ++total;
    const auto name = DomainName::parse(q.qname);
    ASSERT_TRUE(name) << q.qname;
    if (scenario.truth().is_disposable_name(*name)) ++disposable;
  });
  const double share = static_cast<double>(disposable) /
                       static_cast<double>(total);
  EXPECT_GT(share, 0.02);
  EXPECT_LT(share, 0.25);
}

}  // namespace
}  // namespace dnsnoise
