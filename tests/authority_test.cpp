#include "resolver/authority.h"

#include <gtest/gtest.h>

#include "dns/ip.h"

namespace dnsnoise {
namespace {

Question question(const char* name, RRType type = RRType::A) {
  return {DomainName(name), type};
}

TEST(AuthorityTest, UnregisteredIsNxdomain) {
  const SyntheticAuthority authority;
  const auto answer = authority.resolve(question("nobody.example.com"), 0);
  EXPECT_EQ(answer.rcode, RCode::NXDomain);
  EXPECT_TRUE(answer.answers.empty());
  EXPECT_EQ(authority.queries(), 1u);
  EXPECT_EQ(authority.nxdomains(), 1u);
}

TEST(AuthorityTest, FlatZoneAnswersEverythingUnderApex) {
  SyntheticAuthority authority;
  authority.register_zone(DomainName("example.com"),
                          SyntheticAuthority::make_flat_a_zone(300));
  const auto a1 = authority.resolve(question("www.example.com"), 0);
  const auto a2 = authority.resolve(question("deep.sub.example.com"), 0);
  const auto apex = authority.resolve(question("example.com"), 0);
  EXPECT_EQ(a1.rcode, RCode::NoError);
  EXPECT_EQ(a2.rcode, RCode::NoError);
  EXPECT_EQ(apex.rcode, RCode::NoError);
  ASSERT_EQ(a1.answers.size(), 1u);
  EXPECT_EQ(a1.answers[0].ttl, 300u);
  EXPECT_EQ(a1.answers[0].type, RRType::A);
  EXPECT_TRUE(parse_ipv4(a1.answers[0].rdata));
}

TEST(AuthorityTest, AnswersAreDeterministic) {
  SyntheticAuthority authority;
  authority.register_zone(DomainName("example.com"),
                          SyntheticAuthority::make_flat_a_zone(60));
  const auto a1 = authority.resolve(question("x.example.com"), 0);
  const auto a2 = authority.resolve(question("x.example.com"), 12345);
  EXPECT_EQ(a1.answers[0].rdata, a2.answers[0].rdata);
  const auto other = authority.resolve(question("y.example.com"), 0);
  EXPECT_NE(a1.answers[0].rdata, other.answers[0].rdata);
}

TEST(AuthorityTest, AaaaAnswers) {
  SyntheticAuthority authority;
  authority.register_zone(DomainName("example.com"),
                          SyntheticAuthority::make_flat_a_zone(60));
  const auto answer =
      authority.resolve(question("v6.example.com", RRType::AAAA), 0);
  ASSERT_EQ(answer.answers.size(), 1u);
  EXPECT_EQ(answer.answers[0].type, RRType::AAAA);
  EXPECT_TRUE(parse_ipv6(answer.answers[0].rdata));
}

TEST(AuthorityTest, LongestSuffixWins) {
  SyntheticAuthority authority;
  authority.register_zone(DomainName("com"), [](const Question&, SimTime) {
    AuthorityAnswer answer;  // NXDOMAIN for the whole TLD
    return answer;
  });
  authority.register_zone(DomainName("example.com"),
                          SyntheticAuthority::make_flat_a_zone(60));
  EXPECT_EQ(authority.resolve(question("www.example.com"), 0).rcode,
            RCode::NoError);
  EXPECT_EQ(authority.resolve(question("www.other.com"), 0).rcode,
            RCode::NXDomain);
}

TEST(AuthorityTest, ReRegistrationReplacesHandler) {
  SyntheticAuthority authority;
  authority.register_zone(DomainName("z.com"),
                          SyntheticAuthority::make_flat_a_zone(1));
  authority.register_zone(DomainName("z.com"),
                          SyntheticAuthority::make_flat_a_zone(999));
  EXPECT_EQ(authority.zone_count(), 1u);
  EXPECT_EQ(authority.resolve(question("a.z.com"), 0).answers[0].ttl, 999u);
}

TEST(AuthorityTest, DnssecFlagPropagates) {
  SyntheticAuthority authority;
  authority.register_zone(
      DomainName("signed.com"),
      SyntheticAuthority::make_flat_a_zone(60, /*dnssec_signed=*/true));
  EXPECT_TRUE(authority.resolve(question("a.signed.com"), 0).dnssec_signed);
}

TEST(AuthorityTest, SyntheticRdataHelpers) {
  const std::string a = synthetic_a_rdata("some.name.com");
  EXPECT_TRUE(parse_ipv4(a));
  EXPECT_EQ(a, synthetic_a_rdata("some.name.com"));
  EXPECT_NE(a, synthetic_a_rdata("other.name.com"));
  // Addresses live inside the documentation-friendly 10.0.0.0/8.
  EXPECT_EQ(parse_ipv4(a)->octets()[0], 10);

  const std::string aaaa = synthetic_aaaa_rdata("some.name.com");
  const auto parsed = parse_ipv6(aaaa);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->bytes[0], 0x20);
  EXPECT_EQ(parsed->bytes[3], 0xb8);  // 2001:db8::/32
}

}  // namespace
}  // namespace dnsnoise
