// Wire query CLI: a tiny dig replacement built on net/udp_client, used by
// the CI server-smoke job to assert server behaviour (DESIGN.md §14).
//
//   ./build/examples/dns_query 127.0.0.1 5353 a1.smoke.test A
//   ./build/examples/dns_query 127.0.0.1 5353 big.fat.test A --expect-tc-retry
//   ./build/examples/dns_query 127.0.0.1 5353 x.test A --malformed=junk
//
// Assertion flags (each failed expectation prints a FAIL line):
//   --expect-rcode NAME        NOERROR | FORMERR | NXDOMAIN | NOTIMP
//   --expect-min-answers N     at least N answer records
//   --expect-tc-retry          UDP response must carry TC=1 and the final
//                              answer must arrive over TCP
//   --malformed=KIND           send a hand-built broken payload instead of
//                              a real query (junk | truncated |
//                              pointer-loop) and assert the server either
//                              drops it (timeout) or answers FORMERR
//
// Exit codes: 0 all expectations met, 1 expectation failed, 2 usage/IO.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "dns/wire.h"
#include "net/udp_client.h"

using namespace dnsnoise;

namespace {

std::optional<RCode> parse_rcode(const std::string& name) {
  if (name == "NOERROR") return RCode::NoError;
  if (name == "FORMERR") return RCode::FormErr;
  if (name == "NXDOMAIN") return RCode::NXDomain;
  if (name == "NOTIMP") return RCode::NotImp;
  return std::nullopt;
}

const char* rcode_name(RCode rcode) {
  switch (rcode) {
    case RCode::NoError: return "NOERROR";
    case RCode::FormErr: return "FORMERR";
    case RCode::NXDomain: return "NXDOMAIN";
    case RCode::NotImp: return "NOTIMP";
    default: return "OTHER";
  }
}

std::vector<std::uint8_t> build_malformed(const std::string& kind) {
  if (kind == "junk") {
    // Plausible length, no DNS structure.
    return {0xde, 0xad, 0xbe, 0xef, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00,
            0x00, 0x00, 0xff, 0xff, 0xff, 0xff, 0x41, 0x41, 0x41, 0x41};
  }
  if (kind == "truncated") {
    // Header claims one question, payload ends after the header.
    return {0x12, 0x34, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00,
            0x00, 0x00};
  }
  if (kind == "pointer-loop") {
    // Question name is a compression pointer to itself (offset 12).
    return {0x12, 0x34, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00,
            0x00, 0x00, 0xc0, 0x0c, 0x00, 0x01, 0x00, 0x01};
  }
  return {};
}

int run_malformed(const std::string& host, std::uint16_t port,
                  const std::string& kind) {
  const std::vector<std::uint8_t> payload = build_malformed(kind);
  if (payload.empty()) {
    std::fprintf(stderr, "unknown --malformed kind %s\n", kind.c_str());
    return 2;
  }
  net::UdpClient client;
  if (!client.connect(host, port)) {
    std::fprintf(stderr, "connect failed: %s\n", client.error().c_str());
    return 2;
  }
  const auto response = client.exchange(payload, 500);
  if (!response.has_value()) {
    std::printf("PASS malformed/%s: dropped (no response)\n", kind.c_str());
    return 0;
  }
  const auto decoded = decode_message(*response);
  if (decoded.has_value() && decoded->header.rcode == RCode::FormErr) {
    std::printf("PASS malformed/%s: FORMERR\n", kind.c_str());
    return 0;
  }
  std::printf("FAIL malformed/%s: got a non-FORMERR response (%zu bytes)\n",
              kind.c_str(), response->size());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 5) {
    std::fprintf(
        stderr,
        "usage: %s HOST PORT QNAME QTYPE [--expect-rcode NAME]\n"
        "          [--expect-min-answers N] [--expect-tc-retry]\n"
        "          [--malformed=junk|truncated|pointer-loop]\n",
        argv[0]);
    return 2;
  }
  const std::string host = argv[1];
  const auto port =
      static_cast<std::uint16_t>(std::strtoul(argv[2], nullptr, 10));
  const std::string qname = argv[3];
  const std::string qtype_name = argv[4];

  std::optional<RCode> expect_rcode;
  std::size_t expect_min_answers = 0;
  bool expect_tc_retry = false;
  std::string malformed;
  for (int i = 5; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--expect-rcode" && i + 1 < argc) {
      expect_rcode = parse_rcode(argv[++i]);
      if (!expect_rcode.has_value()) {
        std::fprintf(stderr, "unknown rcode name %s\n", argv[i]);
        return 2;
      }
    } else if (arg == "--expect-min-answers" && i + 1 < argc) {
      expect_min_answers =
          static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--expect-tc-retry") {
      expect_tc_retry = true;
    } else if (arg.rfind("--malformed=", 0) == 0) {
      malformed = arg.substr(std::strlen("--malformed="));
    } else {
      std::fprintf(stderr, "unknown argument %s\n", arg.c_str());
      return 2;
    }
  }

  if (!malformed.empty()) return run_malformed(host, port, malformed);

  RRType qtype = RRType::A;
  if (qtype_name == "AAAA") {
    qtype = RRType::AAAA;
  } else if (qtype_name == "TXT") {
    qtype = RRType::TXT;
  } else if (qtype_name == "CNAME") {
    qtype = RRType::CNAME;
  } else if (qtype_name != "A") {
    std::fprintf(stderr, "unsupported qtype %s\n", qtype_name.c_str());
    return 2;
  }
  const auto name = DomainName::parse(qname);
  if (!name.has_value()) {
    std::fprintf(stderr, "bad qname %s\n", qname.c_str());
    return 2;
  }

  net::DnsWireClient client;
  if (!client.connect(host, port)) {
    std::fprintf(stderr, "connect failed: %s\n", client.error().c_str());
    return 2;
  }
  const auto result =
      client.query(DnsMessage::make_query(0x4242, *name, qtype), 2000);
  if (!result.has_value()) {
    std::fprintf(stderr, "FAIL %s %s: no response (%s)\n", qname.c_str(),
                 qtype_name.c_str(), client.error().c_str());
    return 1;
  }

  const DnsMessage& response = result->response;
  std::printf("%s %s: rcode=%s answers=%zu%s%s\n", qname.c_str(),
              qtype_name.c_str(), rcode_name(response.header.rcode),
              response.answers.size(),
              result->udp_truncated ? " udp-tc" : "",
              result->via_tcp ? " via-tcp" : "");
  for (const ResourceRecord& rr : response.answers) {
    std::printf("  %s %u %s\n", rr.name.text().c_str(), rr.ttl,
                rr.rdata.c_str());
  }

  int failures = 0;
  if (expect_rcode.has_value() && response.header.rcode != *expect_rcode) {
    std::printf("FAIL rcode: expected %s, got %s\n", rcode_name(*expect_rcode),
                rcode_name(response.header.rcode));
    ++failures;
  }
  if (response.answers.size() < expect_min_answers) {
    std::printf("FAIL answers: expected at least %zu, got %zu\n",
                expect_min_answers, response.answers.size());
    ++failures;
  }
  if (expect_tc_retry && !(result->udp_truncated && result->via_tcp)) {
    std::printf("FAIL tc-retry: udp_truncated=%d via_tcp=%d\n",
                result->udp_truncated ? 1 : 0, result->via_tcp ? 1 : 0);
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}
