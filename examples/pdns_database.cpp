// Passive-DNS database example.
//
// Bootstraps a pDNS database over three days of ISP traffic, mines
// disposable zones on day one, and shows the two things an operator cares
// about: forensic lookups (when was this record first seen?) and the
// storage effect of wildcard-folding the mined disposable zones.
//
// Run: ./build/examples/pdns_database

#include <cstdio>
#include <optional>

#include "miner/pipeline.h"
#include "pdns/pdns_db.h"
#include "util/strings.h"
#include "util/table.h"

using namespace dnsnoise;

int main() {
  PipelineOptions options;
  options.scale.queries_per_day = 120'000;
  options.scale.client_count = 6'000;
  options.warmup = false;

  PassiveDnsDb raw(/*wildcard_folding=*/false);
  PassiveDnsDb folded(/*wildcard_folding=*/true);
  std::optional<FindingIndex> mined;
  std::string sample_disposable;
  std::string sample_popular = "mail.google.com";

  for (int day = 0; day < 3; ++day) {
    ScenarioScale scale = options.scale;
    scale.traffic_stream = static_cast<std::uint64_t>(day);
    PipelineOptions day_options = options;
    day_options.scale = scale;
    DayCapture capture;
    if (day == 0) {
      // Mine the disposable zones once, install them as folding rules.
      const MiningDayResult result =
          run_mining_day(ScenarioDate::kDec30, day_options, &capture);
      for (const auto& finding : result.findings) {
        folded.add_rule({finding.zone, finding.depth});
      }
      mined.emplace(result.findings);
      std::printf("Day 1: mined %zu disposable zone rules "
                  "(precision vs ground truth: %s)\n",
                  result.findings.size(),
                  percent(result.evaluation.finding_precision()).c_str());
    } else {
      Scenario scenario(ScenarioDate::kDec30, scale);
      simulate_day(scenario, capture, day_options, day);
    }
    for (const auto& [key, counts] : capture.chr().entries()) {
      const auto name = DomainName::parse(key.name);
      if (!name) continue;
      raw.add(*name, key.type, key.rdata, day);
      folded.add(*name, key.type, key.rdata, day);
      if ((sample_disposable.empty() || name->label_count() >= 6) &&
          sample_disposable.find(".avqs.") == std::string::npos && mined &&
          mined->is_disposable(*name)) {
        sample_disposable = key.name;  // prefer a deep archetypal name
      }
    }
    std::printf("Day %d: raw DB %s records (%s bytes), folded DB %s records "
                "(%s bytes)\n",
                day + 1, with_commas(raw.unique_records()).c_str(),
                with_commas(raw.storage_bytes()).c_str(),
                with_commas(folded.unique_records()).c_str(),
                with_commas(folded.storage_bytes()).c_str());
  }

  // Forensic lookups.
  std::printf("\nForensic queries against the raw database:\n");
  TextTable table({"query", "stored_as", "first_seen_day"});
  for (const std::string& name : {sample_popular, sample_disposable}) {
    if (name.empty()) continue;
    const DomainName domain(name);
    // Probe all three days' possible first-seen values via the store.
    std::int64_t first_seen = -1;
    raw.store().for_each([&](const RRKey& key, const RpDnsRecord& record) {
      if (key.name == name &&
          (first_seen < 0 || record.first_seen_day < first_seen)) {
        first_seen = record.first_seen_day;
      }
    });
    table.add_row({name, folded.stored_name(domain),
                   first_seen < 0 ? "never" : std::to_string(first_seen + 1)});
  }
  std::printf("%s\n", table.render().c_str());

  const double saved = 1.0 - static_cast<double>(folded.storage_bytes()) /
                                 static_cast<double>(raw.storage_bytes());
  std::printf("Wildcard folding keeps full forensic coverage of the\n"
              "disposable zones while saving %s of storage (%s folded\n"
              "additions hit existing wildcard records).\n",
              percent(saved).c_str(),
              with_commas(folded.folded_additions()).c_str());
  return 0;
}
