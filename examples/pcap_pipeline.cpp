// Passive-DNS collection pipeline example.
//
// Materializes one hour of synthetic ISP traffic as a real .pcap file
// (Ethernet/IPv4/UDP/DNS wire format), then plays it back through the
// capture stack — pcap reader -> frame parser -> DNS decoder -> fpDNS
// builder — and reports what a passive DNS collector would have stored,
// plus the single-core decode throughput.
//
// Run: ./build/examples/pcap_pipeline [output.pcap]

#include <chrono>
#include <cstdio>
#include <filesystem>

#include "dns/wire.h"
#include "miner/day_capture.h"
#include "netio/capture.h"
#include "util/strings.h"
#include "workload/scenario.h"

using namespace dnsnoise;

namespace {
const Ipv4 kResolverIp = Ipv4::from_octets(10, 0, 0, 53);
const Ipv4 kAuthorityIp = Ipv4::from_octets(198, 51, 100, 1);
}  // namespace

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1]
               : (std::filesystem::temp_directory_path() / "dnsnoise_tap.pcap")
                     .string();

  // 1. Simulate one hour of traffic and write both taps into a pcap.
  ScenarioScale scale;
  scale.queries_per_day = 480'000;  // => ~20k queries in our hour
  scale.client_count = 5'000;
  scale.population_scale = 0.3;
  Scenario scenario(ScenarioDate::kDec30, scale);

  ClusterConfig cluster_config;
  RdnsCluster cluster(cluster_config, scenario.authority());
  PcapWriter writer;
  std::uint16_t txid = 0;

  FunctionTapObserver pcap_tap([&](const TapBatch& batch) {
    for (const TapEvent& event : batch) {
      const auto answers = batch.answers(event);
      DnsMessage msg = DnsMessage::make_response(
          DnsMessage::make_query(++txid, event.question.name,
                                 event.question.type),
          event.rcode, {answers.begin(), answers.end()});
      if (event.direction == TapDirection::kBelow) {
        const Ipv4 client_ip{
            0xac100000u + static_cast<std::uint32_t>(event.client_id % 65000)};
        writer.write(static_cast<std::uint32_t>(event.ts), 0,
                     build_dns_frame(kResolverIp, 53, client_ip, 40000, msg));
      } else {
        writer.write(static_cast<std::uint32_t>(event.ts), 0,
                     build_dns_frame(kAuthorityIp, 53, kResolverIp, 5353, msg));
      }
    }
  });
  cluster.add_tap_observer(&pcap_tap);

  scenario.traffic().run_day(0, [&cluster](SimTime ts, std::uint64_t client,
                                           const QuerySpec& query) {
    if (ts >= kSecondsPerHour) return;  // keep the capture to one hour
    cluster.query(client, {DomainName(query.qname), query.qtype}, ts);
  });
  cluster.flush_taps();
  writer.save(path);
  std::printf("Wrote %s packets (%s bytes) to %s\n",
              with_commas(writer.packet_count()).c_str(),
              with_commas(writer.bytes().size()).c_str(), path.c_str());

  // 2. Play the file back through the collection pipeline.
  const auto bytes = PcapReader::load_file(path);
  CaptureDecoder decoder({kResolverIp});
  DayCapture capture;
  const auto start = std::chrono::steady_clock::now();
  const std::size_t events =
      decoder.decode_pcap(bytes, [&capture](const DecodedResponse& event) {
        const Question& q = event.message.questions.front();
        if (event.direction == TapDirection::kBelow) {
          capture.on_below(event.ts, event.client_id, q,
                           event.message.header.rcode, event.message.answers);
        } else {
          capture.on_above(event.ts, q, event.message.header.rcode,
                           event.message.answers);
        }
      });
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();

  std::printf("\nDecoded %s DNS responses in %.3fs", with_commas(events).c_str(),
              elapsed);
  std::printf(" (%s packets/s, %.1f MB/s)\n",
              with_commas(static_cast<std::uint64_t>(
                              static_cast<double>(events) / elapsed))
                  .c_str(),
              static_cast<double>(bytes.size()) / elapsed / 1e6);
  std::printf("dropped (non-DNS / malformed): %s\n",
              with_commas(decoder.dropped()).c_str());

  std::printf("\nWhat the passive-DNS collector stored for this hour:\n");
  std::printf("  unique queried names:  %s\n",
              with_commas(capture.unique_queried()).c_str());
  std::printf("  unique resolved names: %s\n",
              with_commas(capture.unique_resolved()).c_str());
  std::printf("  distinct RRs:          %s\n",
              with_commas(capture.chr().unique_rrs()).c_str());
  std::printf("  NXDOMAIN responses:    %s\n",
              with_commas(capture.below_series().sum_nxdomain()).c_str());
  std::remove(path.c_str());
  return 0;
}
