// Resolver cache study: what disposable load does to a fixed-size LRU.
//
// Sweeps the disposable traffic multiplier at a fixed cache size and
// prints hit rate, premature evictions of useful records, and upstream
// traffic — the operational concern of the paper's Section VI-A, as a
// small operator would run it against their own cache sizing.
//
// Run: ./build/examples/cache_study

#include <cstdio>

#include "engine/parallel_miner.h"
#include "util/strings.h"
#include "util/table.h"

using namespace dnsnoise;

int main() {
  std::printf("How much disposable-domain load can this cache absorb?\n\n");

  TextTable table({"disposable_load", "hit_rate", "evictions",
                   "premature_nondisposable", "above_traffic"});
  for (const double multiplier : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    ScenarioScale scale;
    scale.queries_per_day = 200'000;
    scale.client_count = 8'000;
    scale.disposable_traffic_multiplier = multiplier;
    ClusterConfig cluster;
    cluster.cache.capacity = 1'500;  // deliberately tight
    DayCapture capture;
    const EngineReport report = MiningSession(scale)
                                    .cluster(cluster)
                                    .threads(4)
                                    .simulate(ScenarioDate::kDec30, capture);
    if (!report.ok()) {
      std::fprintf(stderr, "simulation failed: %s\n", report.error.c_str());
      return 1;
    }
    const DnsCacheStats& stats = report.counters.stats;
    table.add_row({fixed(multiplier, 1) + "x", percent(stats.hit_rate(), 1),
                   with_commas(stats.evictions),
                   with_commas(stats.premature_nondisposable_evictions),
                   with_commas(capture.above_series().sum_total())});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "Reading: as disposable load grows, one-time entries flood the LRU,\n"
      "evicting still-fresh useful records (premature_nondisposable) and\n"
      "inflating resolver-to-authority traffic — the paper's Section VI-A\n"
      "prediction.  Re-run with a larger capacity in the source to see the\n"
      "effect collapse.\n");
  return 0;
}
