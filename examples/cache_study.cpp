// Resolver cache study: what disposable load does to a fixed-size LRU.
//
// Sweeps the disposable traffic multiplier at a fixed cache size and
// prints hit rate, premature evictions of useful records, and upstream
// traffic — the operational concern of the paper's Section VI-A, as a
// small operator would run it against their own cache sizing.
//
// Run: ./build/examples/cache_study

#include <cstdio>

#include "miner/pipeline.h"
#include "util/strings.h"
#include "util/table.h"

using namespace dnsnoise;

int main() {
  std::printf("How much disposable-domain load can this cache absorb?\n\n");

  TextTable table({"disposable_load", "hit_rate", "evictions",
                   "premature_nondisposable", "above_traffic"});
  for (const double multiplier : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    PipelineOptions options;
    options.scale.queries_per_day = 200'000;
    options.scale.client_count = 8'000;
    options.scale.disposable_traffic_multiplier = multiplier;
    options.cluster.cache.capacity = 1'500;  // deliberately tight
    Scenario scenario(ScenarioDate::kDec30, options.scale);
    DayCapture capture;
    const DnsCacheStats stats =
        simulate_day(scenario, capture, options,
                     scenario_day_index(ScenarioDate::kDec30));
    table.add_row({fixed(multiplier, 1) + "x", percent(stats.hit_rate(), 1),
                   with_commas(stats.evictions),
                   with_commas(stats.premature_nondisposable_evictions),
                   with_commas(capture.above_series().sum_total())});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "Reading: as disposable load grows, one-time entries flood the LRU,\n"
      "evicting still-fresh useful records (premature_nondisposable) and\n"
      "inflating resolver-to-authority traffic — the paper's Section VI-A\n"
      "prediction.  Re-run with a larger capacity in the source to see the\n"
      "effect collapse.\n");
  return 0;
}
