// Quickstart: run the full disposable-zone mining pipeline on one simulated
// day of ISP traffic and print what it found.
//
//   synthetic ISP day -> sharded RDNS cluster -> monitoring tap
//     -> domain name tree + cache-hit-rate stats
//     -> LAD-tree classifier -> Algorithm 1 -> ranked disposable zones
//
// The day runs on the sharded engine (one shard per RDNS server, scheduled
// over 4 worker threads) — results are identical to a single-threaded run.
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/quickstart

#include <cstdio>

#include "engine/parallel_miner.h"
#include "util/strings.h"
#include "util/table.h"

using namespace dnsnoise;

int main() {
  ScenarioScale scale;
  scale.queries_per_day = 150'000;
  scale.client_count = 8'000;

  std::printf("Simulating one day of ISP DNS traffic (%s, %s queries)...\n",
              std::string(scenario_date_name(ScenarioDate::kDec30)).c_str(),
              with_commas(scale.queries_per_day).c_str());

  const MiningDayResult result =
      MiningSession(scale).threads(4).run(ScenarioDate::kDec30);
  if (!result.ok()) {
    std::fprintf(stderr, "mining day failed: %s\n", result.error.c_str());
    return 1;
  }

  std::printf("\nTraining set: %zu labeled zones (%zu disposable)\n",
              result.labeled.size(),
              static_cast<std::size_t>(
                  std::count_if(result.labeled.begin(), result.labeled.end(),
                                [](const LabeledZone& z) { return z.label == 1; })));

  std::printf("\nTop mined disposable zones:\n");
  TextTable table({"zone", "depth", "confidence", "names"});
  for (std::size_t i = 0; i < std::min<std::size_t>(result.findings.size(), 12);
       ++i) {
    const DisposableZoneFinding& f = result.findings[i];
    table.add_row({f.zone, std::to_string(f.depth), fixed(f.confidence, 3),
                   with_commas(f.group_size)});
  }
  std::printf("%s", table.render().c_str());

  const MiningEvaluation& eval = result.evaluation;
  std::printf("\nMined %zu disposable zones under %zu unique 2LDs\n",
              eval.findings, eval.unique_2lds);
  std::printf("  vs ground truth: %zu true / %zu false findings "
              "(precision %s), %zu truth zones discovered\n",
              eval.true_positive_findings, eval.false_positive_findings,
              percent(eval.finding_precision()).c_str(),
              eval.truth_zones_discovered);

  const DayAggregates& agg = result.aggregates;
  std::printf("\nDisposable share of the day (by mined zones):\n");
  std::printf("  queried domains:  %s of %s\n",
              percent(static_cast<double>(agg.disposable_queried) /
                      static_cast<double>(agg.unique_queried)).c_str(),
              with_commas(agg.unique_queried).c_str());
  std::printf("  resolved domains: %s of %s\n",
              percent(static_cast<double>(agg.disposable_resolved) /
                      static_cast<double>(agg.unique_resolved)).c_str(),
              with_commas(agg.unique_resolved).c_str());
  std::printf("  distinct RRs:     %s of %s\n",
              percent(static_cast<double>(agg.disposable_rrs) /
                      static_cast<double>(agg.unique_rrs)).c_str(),
              with_commas(agg.unique_rrs).c_str());
  return 0;
}
