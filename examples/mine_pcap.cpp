// Mine disposable zones from a pcap file — the deployment workflow.
//
//   1. Train a LAD tree on a labeled day (here: the synthetic 11/14
//      scenario, standing in for the paper's hand-labeled zones) and
//      serialize it to disk.
//   2. Capture a day of traffic as a pcap (here: synthesized; point this
//      at a real tap in production).
//   3. Reload the model, replay the pcap through the capture stack, run
//      Algorithm 1, and print the ranked disposable zones.
//
// The point: the classifier transfers — it never saw the traffic it mines.
//
// Run: ./build/examples/mine_pcap

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "dns/wire.h"
#include "miner/pipeline.h"
#include "netio/capture.h"
#include "util/strings.h"
#include "util/table.h"

using namespace dnsnoise;

namespace {

const Ipv4 kResolverIp = Ipv4::from_octets(10, 0, 0, 53);
const Ipv4 kAuthorityIp = Ipv4::from_octets(198, 51, 100, 1);

PipelineOptions small_day() {
  PipelineOptions options;
  options.scale.queries_per_day = 90'000;
  options.scale.client_count = 4'000;
  options.scale.population_scale = 0.5;
  options.labeler.min_group_size = 8;
  return options;
}

/// Step 1: train on the labeled day and persist the model.
std::vector<std::uint8_t> train_and_serialize() {
  const PipelineOptions options = small_day();
  Scenario scenario(ScenarioDate::kNov14, options.scale);
  DayCapture capture;
  simulate_day(scenario, capture, options,
               scenario_day_index(ScenarioDate::kNov14));
  LadTree model;
  model.train(to_dataset(label_zones(capture.tree(), capture.chr(), scenario,
                                     options.labeler)));
  return model.serialize();
}

/// Step 2: a pcap of one (synthetic) day of tap traffic.
std::vector<std::uint8_t> capture_day_as_pcap() {
  PipelineOptions options = small_day();
  Scenario scenario(ScenarioDate::kDec30, options.scale);
  RdnsCluster cluster(options.cluster, scenario.authority());
  PcapWriter writer;
  std::uint16_t txid = 0;
  FunctionTapObserver pcap_tap([&](const TapBatch& batch) {
    for (const TapEvent& event : batch) {
      const auto answers = batch.answers(event);
      DnsMessage msg = DnsMessage::make_response(
          DnsMessage::make_query(++txid, event.question.name,
                                 event.question.type),
          event.rcode, {answers.begin(), answers.end()});
      if (event.direction == TapDirection::kBelow) {
        const Ipv4 client_ip{
            0xac100000u + static_cast<std::uint32_t>(event.client_id % 65000)};
        writer.write(static_cast<std::uint32_t>(event.ts), 0,
                     build_dns_frame(kResolverIp, 53, client_ip, 40000, msg));
      } else {
        writer.write(static_cast<std::uint32_t>(event.ts), 0,
                     build_dns_frame(kAuthorityIp, 53, kResolverIp, 5353, msg));
      }
    }
  });
  cluster.add_tap_observer(&pcap_tap);
  scenario.traffic().run_day(
      scenario_day_index(ScenarioDate::kDec30),
      [&cluster](SimTime ts, std::uint64_t client, const QuerySpec& query) {
        cluster.query(client, {DomainName(query.qname), query.qtype}, ts);
      });
  cluster.flush_taps();
  return writer.bytes();
}

}  // namespace

int main() {
  // --- 1. Train + persist.
  const std::string model_path =
      (std::filesystem::temp_directory_path() / "dnsnoise_model.lad").string();
  {
    const auto bytes = train_and_serialize();
    std::ofstream out(model_path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    std::printf("Trained LAD tree on the labeled day; saved %s bytes to %s\n",
                with_commas(bytes.size()).c_str(), model_path.c_str());
  }

  // --- 2. The traffic to analyze, as real pcap bytes.
  const std::vector<std::uint8_t> pcap = capture_day_as_pcap();
  std::printf("Captured %s bytes of tap pcap for the target day.\n\n",
              with_commas(pcap.size()).c_str());

  // --- 3. Reload the model, replay the pcap, mine.
  std::ifstream in(model_path, std::ios::binary | std::ios::ate);
  std::vector<std::uint8_t> model_bytes(
      static_cast<std::size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(model_bytes.data()),
          static_cast<std::streamsize>(model_bytes.size()));
  const auto model = LadTree::deserialize(model_bytes);
  if (!model) {
    std::fprintf(stderr, "corrupt model file\n");
    return 1;
  }

  CaptureDecoder decoder({kResolverIp});
  DayCapture capture;
  decoder.decode_pcap(pcap, [&capture](const DecodedResponse& event) {
    const Question& q = event.message.questions.front();
    if (event.direction == TapDirection::kBelow) {
      capture.on_below(event.ts, event.client_id, q,
                       event.message.header.rcode, event.message.answers);
    } else {
      capture.on_above(event.ts, q, event.message.header.rcode,
                       event.message.answers);
    }
  });

  const DisposableZoneMiner miner(*model);
  const auto findings = miner.mine(capture.tree(), capture.chr());

  std::printf("Mined %zu disposable zones from the pcap:\n", findings.size());
  TextTable table({"zone", "depth", "confidence", "names"});
  for (std::size_t i = 0; i < std::min<std::size_t>(findings.size(), 10); ++i) {
    table.add_row({findings[i].zone, std::to_string(findings[i].depth),
                   fixed(findings[i].confidence, 3),
                   with_commas(findings[i].group_size)});
  }
  std::printf("%s", table.render().c_str());
  std::remove(model_path.c_str());
  return 0;
}
