// DNS server mode: serve one simulated mining day over a real UDP socket
// (DESIGN.md §14).
//
// Starts a MiningSession in server mode: the warmup day runs in-process,
// then RFC 1035 wire queries — dig, examples/dns_query, or the CI smoke
// client — are answered from the same RDNS cluster + tap path the
// simulator uses, and mining runs over whatever the socket saw.
//
//   ./build/examples/dns_server --port 5353 &
//   dig @127.0.0.1 -p 5353 a1.smoke.test
//
// Options:
//   --port N         UDP port (default 5353; 0 picks an ephemeral port)
//   --shards N       SO_REUSEPORT socket shards (default 2)
//   --duration SEC   serve for SEC seconds, then finish and mine (default:
//                    until SIGINT/SIGTERM)
//   --telemetry N    also serve GET /metrics (OpenMetrics) on 127.0.0.1:N
//   --smoke-zones    register the CI smoke zones: `*.smoke.test` (flat A,
//                    TTL 60) and `*.fat.test` (40 A records — the response
//                    overflows UDP, forcing TC=1 + TCP retry)
//   --scale N        simulated queries/day backing the scenario (default
//                    40000; the warmup runs half of it)
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "engine/parallel_miner.h"
#include "obs/telemetry_server.h"

using namespace dnsnoise;

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

void register_smoke_zones(SyntheticAuthority& authority) {
  authority.register_zone(*DomainName::parse("smoke.test"),
                          SyntheticAuthority::make_flat_a_zone(60));
  authority.register_zone(
      *DomainName::parse("fat.test"), [](const Question& question, SimTime) {
        AuthorityAnswer answer;
        answer.rcode = RCode::NoError;
        for (int i = 0; i < 40; ++i) {
          ResourceRecord rr;
          rr.name = question.name;
          rr.type = RRType::A;
          rr.ttl = 60;
          rr.rdata = "10.9." + std::to_string(i / 256) + "." +
                     std::to_string(i % 256);
          answer.answers.push_back(std::move(rr));
        }
        return answer;
      });
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 5353;
  std::size_t shards = 2;
  long duration = -1;
  long telemetry_port = -1;  // -1 off; 0 picks an ephemeral port
  bool smoke_zones = false;
  std::uint64_t scale_queries = 40'000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> long {
      return i + 1 < argc ? std::strtol(argv[++i], nullptr, 10) : 0;
    };
    if (arg == "--port") {
      port = static_cast<std::uint16_t>(value());
    } else if (arg == "--shards") {
      shards = static_cast<std::size_t>(value());
    } else if (arg == "--duration") {
      duration = value();
    } else if (arg == "--telemetry") {
      telemetry_port = value();
    } else if (arg == "--smoke-zones") {
      smoke_zones = true;
    } else if (arg == "--scale") {
      scale_queries = static_cast<std::uint64_t>(value());
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port N] [--shards N] [--duration SEC] "
                   "[--telemetry N] [--smoke-zones] [--scale N]\n",
                   argv[0]);
      return 2;
    }
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  ScenarioScale scale;
  scale.queries_per_day = scale_queries;
  scale.client_count = scale_queries / 20;

  DnsServerOptions server;
  server.socket_shards = shards;
  if (smoke_zones) server.authority_hook = register_smoke_zones;

  MiningSession session(scale);
  session.threads(2).enable_dns_server(true, port, server);
  if (telemetry_port >= 0) {
    session.enable_telemetry(true, static_cast<std::uint16_t>(telemetry_port));
  }

  std::printf("warming caches (%llu in-process queries)...\n",
              static_cast<unsigned long long>(scale_queries / 2));
  std::fflush(stdout);
  const auto day = session.serve(ScenarioDate::kDec30);
  if (day == nullptr || !day->ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 day != nullptr ? day->error().c_str() : "not enabled");
    return 1;
  }
  std::printf("SERVING udp=127.0.0.1:%u tcp=127.0.0.1:%u shards=%zu%s\n",
              day->udp_port(), day->tcp_port(), day->frontend().shard_count(),
              telemetry_port >= 0 ? " telemetry=on" : "");
  if (session.telemetry() != nullptr) {
    std::printf("METRICS http://127.0.0.1:%u/metrics\n",
                session.telemetry()->port());
  }
  std::fflush(stdout);

  const auto started = std::chrono::steady_clock::now();
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (duration >= 0 &&
        std::chrono::steady_clock::now() - started >=
            std::chrono::seconds(duration)) {
      break;
    }
  }

  const WireFrontendStats stats = day->frontend().stats();
  std::printf("served %llu queries (udp=%llu tcp=%llu formerr=%llu "
              "notimp=%llu dropped=%llu truncated=%llu)\n",
              static_cast<unsigned long long>(stats.queries),
              static_cast<unsigned long long>(stats.udp_queries),
              static_cast<unsigned long long>(stats.tcp_queries),
              static_cast<unsigned long long>(stats.formerr),
              static_cast<unsigned long long>(stats.notimp),
              static_cast<unsigned long long>(stats.dropped),
              static_cast<unsigned long long>(stats.truncated));
  const MiningDayResult result = day->finish();
  if (!result.ok()) {
    // A served day that saw no (or too few) queries has nothing to mine;
    // that is a normal way to stop a demo server.
    std::printf("no mining result: %s\n", result.error.c_str());
    return 0;
  }
  std::printf("mined %zu disposable-zone findings from the served day\n",
              result.findings.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(result.findings.size(), 5);
       ++i) {
    std::printf("  %s (confidence %.3f, %zu names)\n",
                result.findings[i].zone.c_str(), result.findings[i].confidence,
                static_cast<std::size_t>(result.findings[i].group_size));
  }
  return 0;
}
