#!/usr/bin/env python3
"""Gate benchmark throughput regressions from BENCH_*.json snapshots.

Compares the ``*_per_sec`` gauges of a current dnsnoise-metrics-v1 bench
snapshot (written by bench/micro_throughput or bench/fig02_traffic_volume)
against a committed baseline.  Higher is better; a gauge that dropped by
more than ``--threshold`` (default 30%) fails the check.

Gauges present on only one side are reported but never fail the check:
benchmarks come and go, and machine differences are judged only on the
ratio of matched gauges.  A missing baseline file skips the check with
exit 0 so fresh branches don't need one.

Exit codes: 0 ok/skipped, 1 regression found, 2 malformed input.
"""

import argparse
import json
import sys


def load_per_sec_gauges(path):
    """Returns {name: value} for the *_per_sec gauges of one snapshot."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != "dnsnoise-metrics-v1":
        raise ValueError(f"{path}: unexpected schema {doc.get('schema')!r}")
    gauges = doc.get("gauges")
    if not isinstance(gauges, dict):
        raise ValueError(f"{path}: missing gauges section")
    return {
        name: float(value)
        for name, value in gauges.items()
        if name.endswith("_per_sec")
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="freshly produced BENCH_*.json")
    parser.add_argument("baseline", help="committed baseline BENCH_*.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="maximum tolerated fractional throughput drop (default 0.30)",
    )
    args = parser.parse_args()

    try:
        current = load_per_sec_gauges(args.current)
    except FileNotFoundError:
        print(f"error: current snapshot {args.current} not found")
        return 2
    except (ValueError, json.JSONDecodeError) as err:
        print(f"error: {err}")
        return 2

    try:
        baseline = load_per_sec_gauges(args.baseline)
    except FileNotFoundError:
        print(f"no baseline at {args.baseline}; skipping regression check")
        return 0
    except (ValueError, json.JSONDecodeError) as err:
        print(f"error: {err}")
        return 2

    if not baseline:
        print(f"baseline {args.baseline} has no *_per_sec gauges; skipping")
        return 0

    regressions = []
    for name in sorted(baseline):
        if name not in current:
            print(f"note: {name} missing from current run (not gating)")
            continue
        before, after = baseline[name], current[name]
        if before <= 0:
            print(f"note: {name} baseline is {before}; skipping")
            continue
        change = after / before - 1.0
        status = "ok"
        if change < -args.threshold:
            status = "REGRESSION"
            regressions.append(name)
        print(f"{status:>10}  {name}: {before:,.0f} -> {after:,.0f} "
              f"({change:+.1%})")
    for name in sorted(set(current) - set(baseline)):
        print(f"note: {name} is new (no baseline; not gating)")

    if regressions:
        print(f"\n{len(regressions)} gauge(s) regressed more than "
              f"{args.threshold:.0%}: {', '.join(regressions)}")
        return 1
    print("\nno throughput regressions beyond "
          f"{args.threshold:.0%} threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
