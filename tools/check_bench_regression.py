#!/usr/bin/env python3
"""Gate benchmark throughput regressions from BENCH_*.json snapshots.

Compares the ``*_per_sec`` gauges of a current dnsnoise-metrics-v1 bench
snapshot (written by bench/micro_throughput or bench/fig02_traffic_volume)
against a committed baseline.  Higher is better; a gauge that dropped by
more than ``--threshold`` (default 30%) fails the check.

``*_allocs_per_query`` gauges are gated the other way round: lower is
better, and growth beyond ``--alloc-threshold`` (default 20%) fails.
Because the healthy steady-state value is exactly zero, the relative test
alone would flag any nonzero noise, so ``--alloc-slack`` (default 0.05
allocations/query) is added as an absolute allowance before the ratio is
judged.

``*_latency_seconds`` gauges (bench/fig_loadgen percentiles, the server
bench's closed-loop RTTs) are likewise lower-is-better: growth beyond
``--latency-threshold`` (default 100%) fails, after an absolute
``--latency-slack`` allowance (default 2ms) that keeps microsecond-scale
loopback baselines from flagging on scheduler noise.

Gauges present on only one side are reported but never fail the check:
benchmarks come and go, and machine differences are judged only on the
ratio of matched gauges.  A missing baseline file skips the check with
exit 0 so fresh branches don't need one.  A missing or malformed
*current* file is always an error (exit 2): that means the benchmark
itself broke, and skipping would silently disable the gate.  Likewise a
current snapshot with no gated gauges at all while the baseline has some
exits 2 — an empty comparison must not read as a pass — and so does a
run where current and baseline share *zero* gauge names: every
comparison would be a "not gating" note, which must not count as green.

``--floor NAME=VALUE`` (repeatable) adds an absolute lower bound on a
current gauge, independent of the baseline ratio.  Relative thresholds
absorb slow CI machines, but a served-queries bench that collapses to a
crawl should fail even against a generous baseline; the floor is the
backstop.  A floor naming a gauge the current run did not produce is
exit 2 — the bench stopped emitting the gauge, not a pass.

Every failure message names the baseline file path, not just the gauge:
when a legitimate performance change moves a number, the remedy is
re-recording exactly that file, and the CI log should say which one.

Exit codes: 0 ok/skipped, 1 regression found, 2 missing/malformed input.
"""

import argparse
import json
import sys


def load_gauges(path, suffix):
    """Returns {name: value} for gauges of one snapshot ending in suffix."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != "dnsnoise-metrics-v1":
        raise ValueError(f"{path}: unexpected schema {doc.get('schema')!r}")
    gauges = doc.get("gauges")
    if not isinstance(gauges, dict):
        raise ValueError(f"{path}: missing gauges section")
    # A NaN gauge serializes as JSON null (obs/json_writer); treat it as
    # absent rather than crashing the gate on float(None).
    return {
        name: float(value)
        for name, value in gauges.items()
        if name.endswith(suffix)
        and isinstance(value, (int, float))
        and not isinstance(value, bool)
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="freshly produced BENCH_*.json")
    parser.add_argument("baseline", help="committed baseline BENCH_*.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="maximum tolerated fractional throughput drop (default 0.30)",
    )
    parser.add_argument(
        "--alloc-threshold",
        type=float,
        default=0.20,
        help="maximum tolerated fractional allocs_per_query growth "
        "(default 0.20)",
    )
    parser.add_argument(
        "--alloc-slack",
        type=float,
        default=0.05,
        help="absolute allocs/query allowance before the growth ratio is "
        "judged, so ~zero baselines don't flag on noise (default 0.05)",
    )
    parser.add_argument(
        "--latency-threshold",
        type=float,
        default=1.0,
        help="maximum tolerated fractional latency growth (default 1.0, "
        "i.e. a doubling)",
    )
    parser.add_argument(
        "--latency-slack",
        type=float,
        default=0.002,
        help="absolute seconds allowance before the latency growth ratio "
        "is judged, so microsecond baselines don't flag on noise "
        "(default 0.002)",
    )
    parser.add_argument(
        "--floor",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="absolute lower bound on a current gauge, judged in addition "
        "to the baseline ratio (repeatable); a floor whose gauge is "
        "absent from the current run is an error",
    )
    args = parser.parse_args()

    floors = {}
    for spec in args.floor:
        name, sep, value = spec.partition("=")
        try:
            if not sep:
                raise ValueError("expected NAME=VALUE")
            floors[name] = float(value)
        except ValueError as err:
            print(f"error: bad --floor {spec!r}: {err}")
            return 2

    try:
        current = load_gauges(args.current, "_per_sec")
        current_allocs = load_gauges(args.current, "allocs_per_query")
        current_latency = load_gauges(args.current, "_latency_seconds")
        current_all = load_gauges(args.current, "")
    except FileNotFoundError:
        print(f"error: current snapshot {args.current} not found "
              "(did the benchmark run fail before writing it?)")
        return 2
    except (ValueError, json.JSONDecodeError) as err:
        print(f"error: current snapshot is unusable: {err}")
        return 2

    try:
        baseline = load_gauges(args.baseline, "_per_sec")
        baseline_allocs = load_gauges(args.baseline, "allocs_per_query")
        baseline_latency = load_gauges(args.baseline, "_latency_seconds")
    except FileNotFoundError:
        print(f"no baseline at {args.baseline}; skipping regression check")
        return 0
    except (ValueError, json.JSONDecodeError) as err:
        print(f"error: baseline snapshot is unusable: {err}")
        return 2

    if not baseline and not baseline_allocs and not baseline_latency:
        print(f"baseline {args.baseline} has no gated gauges; skipping")
        return 0
    if not current and not current_allocs and not current_latency:
        print(f"error: current snapshot {args.current} has no gated "
              f"gauges while baseline {args.baseline} has "
              f"{len(baseline) + len(baseline_allocs) + len(baseline_latency)}"
              "; the benchmark output changed shape or was truncated")
        return 2
    matched = ((set(baseline) & set(current)) |
               (set(baseline_allocs) & set(current_allocs)) |
               (set(baseline_latency) & set(current_latency)))
    if not matched:
        print(f"error: current snapshot {args.current} and baseline "
              f"{args.baseline} share no gauge names; every comparison "
              "would be skipped, which must not read as a pass")
        return 2

    regressions = []
    for name in sorted(floors):
        if name not in current_all:
            print(f"error: --floor gauge {name} is absent from the "
                  f"current snapshot {args.current}; the benchmark "
                  "stopped emitting it")
            return 2
        value, floor = current_all[name], floors[name]
        status = "ok"
        if value < floor:
            status = "REGRESSION"
            regressions.append(
                f"{name} ({value:,.0f} below absolute floor {floor:,.0f}; "
                f"baseline file: {args.baseline})")
        print(f"{status:>10}  {name}: {value:,.0f} (floor {floor:,.0f})")
    for name in sorted(baseline):
        if name not in current:
            print(f"note: {name} missing from current run (not gating)")
            continue
        before, after = baseline[name], current[name]
        if before <= 0:
            print(f"note: {name} baseline is {before}; skipping")
            continue
        change = after / before - 1.0
        status = "ok"
        if change < -args.threshold:
            status = "REGRESSION"
            regressions.append(
                f"{name} ({before:,.0f} -> {after:,.0f}, {change:+.1%}, "
                f"limit -{args.threshold:.0%}; "
                f"baseline file: {args.baseline})")
        print(f"{status:>10}  {name}: {before:,.0f} -> {after:,.0f} "
              f"({change:+.1%})")
    # Lower-is-better gauges: an alloc crept back into a zero-alloc path.
    for name in sorted(baseline_allocs):
        if name not in current_allocs:
            print(f"note: {name} missing from current run (not gating)")
            continue
        before, after = baseline_allocs[name], current_allocs[name]
        limit = before * (1.0 + args.alloc_threshold) + args.alloc_slack
        status = "ok"
        if after > limit:
            status = "REGRESSION"
            regressions.append(
                f"{name} ({before:.3f} -> {after:.3f} allocs/query, "
                f"limit {limit:.3f}; baseline file: {args.baseline})")
        print(f"{status:>10}  {name}: {before:.3f} -> {after:.3f} "
              f"allocs/query (limit {limit:.3f})")
    # Lower-is-better gauges: latency percentiles must not balloon.
    for name in sorted(baseline_latency):
        if name not in current_latency:
            print(f"note: {name} missing from current run (not gating)")
            continue
        before, after = baseline_latency[name], current_latency[name]
        limit = before * (1.0 + args.latency_threshold) + args.latency_slack
        status = "ok"
        if after > limit:
            status = "REGRESSION"
            regressions.append(
                f"{name} ({before:.6f}s -> {after:.6f}s, "
                f"limit {limit:.6f}s; baseline file: {args.baseline})")
        print(f"{status:>10}  {name}: {before:.6f}s -> {after:.6f}s "
              f"(limit {limit:.6f}s)")
    for name in sorted((set(current) - set(baseline)) |
                       (set(current_allocs) - set(baseline_allocs)) |
                       (set(current_latency) - set(baseline_latency))):
        print(f"note: {name} is new (no baseline; not gating)")

    if regressions:
        # Name the baseline file in the failure summary too: the fix for a
        # legitimate speedup/slowdown is editing exactly that file, and CI
        # logs are where people go looking for which one.
        print(f"\n{len(regressions)} gauge(s) regressed "
              f"(baseline: {args.baseline}):")
        for detail in regressions:
            print(f"  {detail}")
        return 1
    print("\nno regressions beyond thresholds "
          f"(throughput -{args.threshold:.0%}, "
          f"allocs +{args.alloc_threshold:.0%}+{args.alloc_slack}, "
          f"latency +{args.latency_threshold:.0%}+{args.latency_slack}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
