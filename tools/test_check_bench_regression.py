#!/usr/bin/env python3
"""Exit-code contract tests for tools/check_bench_regression.py.

Runs the gate as a subprocess against generated fixture snapshots and
asserts the documented exit codes: 0 ok/skipped, 1 regression found,
2 missing/malformed input.  Registered with ctest as
``tools.check_bench_regression``.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

GATE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    "check_bench_regression.py")


def snapshot(gauges):
    return {"schema": "dnsnoise-metrics-v1", "counters": {},
            "gauges": gauges, "timers": {}}


class CheckBenchRegressionTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def path(self, name, doc=None, raw=None):
        path = os.path.join(self.dir.name, name)
        with open(path, "w", encoding="utf-8") as fh:
            if raw is not None:
                fh.write(raw)
            else:
                json.dump(doc, fh)
        return path

    def run_gate(self, current, baseline, *extra):
        result = subprocess.run(
            [sys.executable, GATE, current, baseline, *extra],
            capture_output=True, text=True)
        return result.returncode, result.stdout

    def test_no_regression_passes(self):
        current = self.path("current.json",
                            snapshot({"a.events_per_sec": 1000.0}))
        baseline = self.path("baseline.json",
                             snapshot({"a.events_per_sec": 900.0}))
        code, out = self.run_gate(current, baseline)
        self.assertEqual(code, 0, out)
        self.assertIn("no regressions", out)

    def test_throughput_drop_beyond_threshold_fails(self):
        current = self.path("current.json",
                            snapshot({"a.events_per_sec": 500.0}))
        baseline = self.path("baseline.json",
                             snapshot({"a.events_per_sec": 1000.0}))
        code, out = self.run_gate(current, baseline)
        self.assertEqual(code, 1, out)
        self.assertIn("REGRESSION", out)

    def test_drop_within_threshold_passes(self):
        current = self.path("current.json",
                            snapshot({"a.events_per_sec": 800.0}))
        baseline = self.path("baseline.json",
                             snapshot({"a.events_per_sec": 1000.0}))
        code, out = self.run_gate(current, baseline)
        self.assertEqual(code, 0, out)

    def test_custom_threshold_is_honored(self):
        current = self.path("current.json",
                            snapshot({"a.events_per_sec": 800.0}))
        baseline = self.path("baseline.json",
                             snapshot({"a.events_per_sec": 1000.0}))
        code, _ = self.run_gate(current, baseline, "--threshold", "0.10")
        self.assertEqual(code, 1)

    def test_alloc_growth_fails(self):
        current = self.path("current.json",
                            snapshot({"a.allocs_per_query": 0.5}))
        baseline = self.path("baseline.json",
                             snapshot({"a.allocs_per_query": 0.0}))
        code, out = self.run_gate(current, baseline)
        self.assertEqual(code, 1, out)
        self.assertIn("allocs/query", out)

    def test_alloc_slack_absorbs_noise(self):
        current = self.path("current.json",
                            snapshot({"a.allocs_per_query": 0.04}))
        baseline = self.path("baseline.json",
                             snapshot({"a.allocs_per_query": 0.0}))
        code, out = self.run_gate(current, baseline)
        self.assertEqual(code, 0, out)

    def test_latency_growth_beyond_threshold_fails(self):
        # Lower is better: p99 quadrupling past slack+ratio must fail.
        current = self.path(
            "current.json",
            snapshot({"loadgen.open.p99_latency_seconds": 0.400}))
        baseline = self.path(
            "baseline.json",
            snapshot({"loadgen.open.p99_latency_seconds": 0.100}))
        code, out = self.run_gate(current, baseline)
        self.assertEqual(code, 1, out)
        self.assertIn("REGRESSION", out)
        self.assertIn("p99_latency_seconds", out)

    def test_latency_growth_within_threshold_passes(self):
        current = self.path(
            "current.json",
            snapshot({"loadgen.open.p99_latency_seconds": 0.150}))
        baseline = self.path(
            "baseline.json",
            snapshot({"loadgen.open.p99_latency_seconds": 0.100}))
        code, out = self.run_gate(current, baseline)
        self.assertEqual(code, 0, out)

    def test_latency_slack_absorbs_microsecond_noise(self):
        # 50us -> 1.5ms is a 30x ratio but within the 2ms absolute slack:
        # loopback-scale baselines must not flag on scheduler noise.
        current = self.path(
            "current.json",
            snapshot({"server.wire_p99_latency_seconds": 0.0015}))
        baseline = self.path(
            "baseline.json",
            snapshot({"server.wire_p99_latency_seconds": 0.00005}))
        code, out = self.run_gate(current, baseline)
        self.assertEqual(code, 0, out)

    def test_latency_improvement_never_gates(self):
        current = self.path(
            "current.json",
            snapshot({"loadgen.closed.p50_latency_seconds": 0.010}))
        baseline = self.path(
            "baseline.json",
            snapshot({"loadgen.closed.p50_latency_seconds": 0.500}))
        code, out = self.run_gate(current, baseline)
        self.assertEqual(code, 0, out)

    def test_custom_latency_threshold_is_honored(self):
        current = self.path(
            "current.json",
            snapshot({"loadgen.open.p999_latency_seconds": 0.160}))
        baseline = self.path(
            "baseline.json",
            snapshot({"loadgen.open.p999_latency_seconds": 0.100}))
        code, _ = self.run_gate(current, baseline,
                                "--latency-threshold", "0.25")
        self.assertEqual(code, 1)

    def test_latency_only_snapshots_still_gate(self):
        # A snapshot whose only gated gauges are latency percentiles must
        # count as gated (not "no gated gauges" / "share no names").
        current = self.path(
            "current.json",
            snapshot({"loadgen.open.p99_latency_seconds": 0.100}))
        baseline = self.path(
            "baseline.json",
            snapshot({"loadgen.open.p99_latency_seconds": 0.100}))
        code, out = self.run_gate(current, baseline)
        self.assertEqual(code, 0, out)
        self.assertIn("no regressions", out)

    def test_missing_baseline_skips_with_zero(self):
        current = self.path("current.json",
                            snapshot({"a.events_per_sec": 1000.0}))
        code, out = self.run_gate(
            current, os.path.join(self.dir.name, "absent.json"))
        self.assertEqual(code, 0, out)
        self.assertIn("skipping", out)

    def test_missing_current_errors(self):
        baseline = self.path("baseline.json",
                             snapshot({"a.events_per_sec": 1000.0}))
        code, out = self.run_gate(
            os.path.join(self.dir.name, "absent.json"), baseline)
        self.assertEqual(code, 2, out)

    def test_malformed_current_errors(self):
        current = self.path("current.json", raw="{not json")
        baseline = self.path("baseline.json",
                             snapshot({"a.events_per_sec": 1000.0}))
        code, out = self.run_gate(current, baseline)
        self.assertEqual(code, 2, out)

    def test_wrong_schema_errors(self):
        current = self.path(
            "current.json",
            {"schema": "something-else", "gauges": {}})
        baseline = self.path("baseline.json",
                             snapshot({"a.events_per_sec": 1000.0}))
        code, out = self.run_gate(current, baseline)
        self.assertEqual(code, 2, out)

    def test_empty_current_against_populated_baseline_errors(self):
        current = self.path("current.json", snapshot({}))
        baseline = self.path("baseline.json",
                             snapshot({"a.events_per_sec": 1000.0}))
        code, out = self.run_gate(current, baseline)
        self.assertEqual(code, 2, out)
        self.assertIn("no gated", out)

    def test_gauge_only_on_one_side_never_gates(self):
        current = self.path(
            "current.json",
            snapshot({"a.events_per_sec": 1000.0,
                      "b.events_per_sec": 1.0}))
        baseline = self.path(
            "baseline.json",
            snapshot({"a.events_per_sec": 1000.0,
                      "c.events_per_sec": 9999.0}))
        code, out = self.run_gate(current, baseline)
        self.assertEqual(code, 0, out)
        self.assertIn("missing from current", out)
        self.assertIn("is new", out)

    def test_zero_name_overlap_errors(self):
        # Both sides have gated gauges but none in common: every check
        # would be a "not gating" note, which must not read as a pass.
        current = self.path("current.json",
                            snapshot({"b.events_per_sec": 1000.0}))
        baseline = self.path("baseline.json",
                             snapshot({"c.events_per_sec": 900.0}))
        code, out = self.run_gate(current, baseline)
        self.assertEqual(code, 2, out)
        self.assertIn("share no gauge names", out)

    def test_floor_pass(self):
        current = self.path("current.json",
                            snapshot({"a.events_per_sec": 1000.0}))
        baseline = self.path("baseline.json",
                             snapshot({"a.events_per_sec": 900.0}))
        code, out = self.run_gate(current, baseline,
                                  "--floor", "a.events_per_sec=500")
        self.assertEqual(code, 0, out)
        self.assertIn("floor", out)

    def test_floor_violation_fails(self):
        # The ratio passes (current > baseline) but the absolute floor
        # still fails: floors are independent of the baseline.
        current = self.path("current.json",
                            snapshot({"a.events_per_sec": 1000.0}))
        baseline = self.path("baseline.json",
                             snapshot({"a.events_per_sec": 900.0}))
        code, out = self.run_gate(current, baseline,
                                  "--floor", "a.events_per_sec=5000")
        self.assertEqual(code, 1, out)
        self.assertIn("below absolute floor", out)

    def test_floor_gates_unsuffixed_gauges_too(self):
        current = self.path(
            "current.json",
            snapshot({"a.events_per_sec": 1000.0, "a.answered": 3.0}))
        baseline = self.path("baseline.json",
                             snapshot({"a.events_per_sec": 900.0}))
        code, out = self.run_gate(current, baseline,
                                  "--floor", "a.answered=10")
        self.assertEqual(code, 1, out)

    def test_floor_on_missing_gauge_errors(self):
        current = self.path("current.json",
                            snapshot({"a.events_per_sec": 1000.0}))
        baseline = self.path("baseline.json",
                             snapshot({"a.events_per_sec": 900.0}))
        code, out = self.run_gate(current, baseline,
                                  "--floor", "gone.events_per_sec=1")
        self.assertEqual(code, 2, out)
        self.assertIn("absent from the current snapshot", out)

    def test_malformed_floor_spec_errors(self):
        current = self.path("current.json",
                            snapshot({"a.events_per_sec": 1000.0}))
        baseline = self.path("baseline.json",
                             snapshot({"a.events_per_sec": 900.0}))
        for spec in ("no-equals", "a.events_per_sec=not-a-number"):
            code, out = self.run_gate(current, baseline, "--floor", spec)
            self.assertEqual(code, 2, (spec, out))

    def test_failure_messages_name_the_baseline_file(self):
        # Every regression detail must cite the baseline file path so the
        # CI log says which file to re-record after a legitimate change.
        current = self.path(
            "current.json",
            snapshot({"a.events_per_sec": 100.0,
                      "a.allocs_per_query": 5.0,
                      "loadgen.open.p99_latency_seconds": 0.900}))
        baseline = self.path(
            "slow-baseline.json",
            snapshot({"a.events_per_sec": 1000.0,
                      "a.allocs_per_query": 0.0,
                      "loadgen.open.p99_latency_seconds": 0.100}))
        code, out = self.run_gate(current, baseline,
                                  "--floor", "a.events_per_sec=500")
        self.assertEqual(code, 1, out)
        summary = out[out.index("gauge(s) regressed"):]
        self.assertIn(baseline, summary)
        # All four regression kinds fired, and each detail line names the
        # baseline file, not just the gauge.
        details = [line for line in summary.splitlines()
                   if line.startswith("  ")]
        self.assertEqual(len(details), 4, out)
        for detail in details:
            self.assertIn(baseline, detail, detail)

    def test_null_gauges_are_ignored(self):
        # A NaN gauge serializes as JSON null; the gate must not crash
        # and must not gate on it.
        current = self.path(
            "current.json",
            snapshot({"a.events_per_sec": 1000.0,
                      "b.events_per_sec": None}))
        baseline = self.path(
            "baseline.json",
            snapshot({"a.events_per_sec": 900.0,
                      "b.events_per_sec": 5000.0}))
        code, out = self.run_gate(current, baseline)
        self.assertEqual(code, 0, out)
        self.assertIn("missing from current", out)


if __name__ == "__main__":
    unittest.main()
